"""Incremental sensitivity patching — differential tests.

The contract of ISSUE 4: a live simulator patched edit-by-edit through an
arbitrary transform script (including undo/redo round-trips past the
history bound) must be *bit-identical* to a simulator rebuilt from scratch
on the transformed netlist — same transfer streams (values and cycles),
same per-channel statistics, same combinational-loop diagnostics — and a
simulator that was *not* patched must refuse to run rather than read stale
sensitivity tables.
"""

import random

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.functional import Func
from repro.errors import CombinationalLoopError, TransformError
from repro.netlist.graph import Netlist
from repro.sim.batch import BatchSimulator, topology_signature
from repro.sim.engine import Simulator
from repro.sim.sensitivity import SensitivityMap
from repro.sim.stats import TransferLog
from repro.transform.bubbles import insert_bubble
from repro.transform.session import Session

from test_fuzz import build_pipeline

#: random transform scripts in the fuzz sweep.
N_RANDOM_SCRIPTS = 18


def _stats_dict(sim, channel_names):
    s = sim.stats
    return {
        "cycles": s.cycles,
        "transfers": {n: s.transfers[n] for n in channel_names},
        "cancels": {n: s.cancels[n] for n in channel_names},
        "backwards": {n: s.backwards[n] for n in channel_names},
        "stalls": {n: s.stalls[n] for n in channel_names},
        "idles": {n: s.idles[n] for n in channel_names},
    }


def _capture_patched(sim, netlist, cycles):
    """Reset the warm simulator and run it, recording streams + stats."""
    channels = list(netlist.channels)
    log = TransferLog(channels)
    sim.reset()
    sim.observers.append(log)
    try:
        sim.run(cycles)
    finally:
        sim.observers.remove(log)
    sink = netlist.nodes.get("snk")
    return (log.streams, _stats_dict(sim, channels),
            sink.values if sink is not None else None)


def _capture_rebuilt(netlist, cycles, engine="worklist"):
    """Clone the netlist and run a from-scratch simulator on the clone."""
    working = netlist.clone()
    channels = list(working.channels)
    log = TransferLog(channels)
    sim = Simulator(working, engine=engine, observers=[log])
    sim.run(cycles)
    sink = working.nodes.get("snk")
    return (log.streams, _stats_dict(sim, channels),
            sink.values if sink is not None else None)


def assert_patched_equals_rebuilt(session, sim, cycles=220):
    patched = _capture_patched(sim, session.netlist, cycles)
    for engine in ("worklist", "naive"):
        rebuilt = _capture_rebuilt(session.netlist, cycles, engine=engine)
        assert patched[0] == rebuilt[0], f"streams diverged vs {engine}"
        assert patched[1] == rebuilt[1], f"stats diverged vs {engine}"
        assert patched[2] == rebuilt[2], f"sink values diverged vs {engine}"


def _random_script_step(rng, session, inserted):
    """One random transform; returns a description or None when skipped."""
    choice = rng.randrange(6)
    channels = list(session.netlist.channels)
    if choice == 0:
        channel = rng.choice(channels)
        _record, name = session.insert_bubble(channel)
        inserted.append(name)
        return f"insert_bubble {channel}"
    if choice == 1:
        channel = rng.choice(channels)
        _record, name = session.insert_zbl(channel)
        inserted.append(name)
        return f"insert_zbl {channel}"
    if choice == 2 and inserted:
        name = rng.choice(inserted)
        if name in session.netlist.nodes:
            try:
                session.remove_buffer(name)
            except TransformError:
                return None          # holds tokens / already unspliced
            return f"remove_buffer {name}"
        return None
    if choice == 3:
        try:
            session.undo()
        except TransformError:
            return None
        return "undo"
    if choice == 4:
        try:
            session.redo()
        except TransformError:
            return None
        return "redo"
    return None


class TestFuzzedTransformScripts:
    @pytest.mark.parametrize("seed", range(N_RANDOM_SCRIPTS))
    def test_patched_simulator_bit_identical_to_rebuild(self, seed):
        rng = random.Random(seed * 1237 + 11)
        stages = [rng.choice(["eb", "zbl", "func"])
                  for _ in range(rng.randint(1, 5))]
        stall = rng.choice([0.0, 0.3, 0.6])
        kill = rng.random() < 0.3
        net = build_pipeline(stages, stall, seed, list(range(20)), kill=kill)
        session = Session(net, max_history=4)
        sim = session.simulator()
        inserted = []
        for step in range(rng.randint(4, 12)):
            _random_script_step(rng, session, inserted)
            if step % 3 == 2:
                # exercise the patched structures mid-script, not only at
                # the end (reset keeps patched/rebuilt comparable).
                sim.reset()
                sim.run(25)
        session.netlist.validate()
        assert_patched_equals_rebuilt(session, sim)

    def test_undo_redo_round_trip_past_max_history(self):
        net = build_pipeline(["eb", "func", "eb"], 0.2, 5, list(range(20)))
        session = Session(net, max_history=3)
        sim = session.simulator()
        before = topology_signature(session.netlist)
        for _ in range(6):                     # twice the history bound
            session.insert_bubble("c0")
        for _ in range(3):
            session.undo()
        with pytest.raises(TransformError):
            session.undo()                     # history bound reached
        for _ in range(3):
            session.redo()
        with pytest.raises(TransformError):
            session.redo()
        # 6 inserted, 3 undone, 3 redone: 6 bubbles on c0 in the end.
        assert len(session.netlist.nodes) == len(net.nodes) + 6
        assert topology_signature(session.netlist) != before
        session.netlist.validate()
        assert_patched_equals_rebuilt(session, sim)

    def test_full_speculation_recipe_with_warm_simulator(self):
        from repro.netlist import patterns

        net, _names = patterns.fig1a(lambda g: g % 2)
        session = Session(net)
        sim = session.simulator()
        session.run_script(
            """
            shannon mux F
            early_eval mux
            share F_c0 F_c1 --scheduler=toggle
            insert_bubble mux_f
            undo
            """
        )
        patched = _capture_patched(sim, session.netlist, 200)
        rebuilt = _capture_rebuilt(session.netlist, 200)
        assert patched[0] == rebuilt[0]
        assert patched[1] == rebuilt[1]


class TestSensitivityMapEquivalence:
    def _reader_names(self, smap):
        """Channel-name/signal -> reader-node-name sets (slot independent)."""
        from repro.elastic.channel import ALL_SIGNALS, N_SIGNALS

        result = {}
        for slot, channel in enumerate(smap.channel_slots):
            if channel is None:
                continue
            for offset, signal in enumerate(ALL_SIGNALS):
                readers = smap.readers[slot * N_SIGNALS + offset]
                result[(channel.name, signal)] = {
                    smap.node_slots[i].name for i in readers
                }
        return result

    @pytest.mark.parametrize("seed", range(6))
    def test_patched_tables_match_fresh_build(self, seed):
        rng = random.Random(seed + 400)
        net = build_pipeline(["eb", "func", "zbl", "eb"], 0.2, seed,
                             list(range(10)))
        session = Session(net, max_history=4)
        sim = session.simulator()
        inserted = []
        for _ in range(10):
            _random_script_step(rng, session, inserted)
        patched = sim._smap
        fresh = SensitivityMap(session.netlist.clone())
        assert self._reader_names(patched) == self._reader_names(fresh)
        # the seed order covers exactly the live nodes, each once
        live = [patched.node_slots[i].name for i in patched.order]
        assert sorted(live) == sorted(session.netlist.nodes)

    def test_slot_tables_compact_under_long_churn(self):
        """A long insert/undo loop must not grow the slot tables (and the
        per-cycle structures derived from them) with the number of edits
        ever applied — holes are compacted away once they dominate."""
        net = build_pipeline(["eb", "func", "eb"], 0.2, 7, list(range(15)))
        session = Session(net)
        sim = session.simulator(profile=True)
        for _ in range(300):
            session.insert_bubble("c0")
            session.undo()
        smap = sim._smap
        assert smap.compactions > 0
        assert len(smap.node_slots) < 2 * len(session.netlist.nodes) + \
            SensitivityMap.MIN_COMPACT_SLOTS
        assert len(smap.channel_slots) < 2 * len(session.netlist.channels) + \
            SensitivityMap.MIN_COMPACT_SLOTS
        assert_patched_equals_rebuilt(session, sim, cycles=120)
        # the remapped profile counters still line up with the slots
        report = sim.profile_report()
        assert report.n_nodes == len(session.netlist.nodes)

    def test_local_reorder_overlap_falls_back(self):
        """Regression: when a pre-existing back edge (cyclic sensitivity
        region) makes the Pearce–Kelly forward and backward discovery sets
        overlap, a local pool placement is impossible — the map must fall
        back to a full re-levelization instead of corrupting the seed
        order (dropping one node, duplicating another)."""
        net = build_pipeline(["eb", "func"], 0.0, 1, [1, 2])   # 4 nodes
        smap = SensitivityMap(net)
        # Fabricate the graph state directly: order [0,1,2,3] with edges
        # 0->1, 1->3 and the back edge 3->2 (as Kahn's scan fallback can
        # legitimately leave behind), then insert edge 2->0.  The bounded
        # forward search from 0 ({0,1}) never reaches 2, but the backward
        # search from 2 runs through the back edge to {2,3,1,0} — the
        # overlapping sets used to place node 1 twice and drop node 2.
        smap._succ = [{1: 1}, {3: 1}, {}, {2: 1}]
        smap._pred = [{}, {0: 1}, {3: 1}, {1: 1}]
        smap.order[:] = [0, 1, 2, 3]
        smap.pos = [0, 1, 2, 3]
        smap._add_edge(2, 0)
        before_fallbacks = smap.full_relevels
        smap._order_insert_edge(2, 0)
        assert sorted(smap.order) == [0, 1, 2, 3], (
            f"seed order corrupted: {smap.order}"
        )
        assert smap.full_relevels == before_fallbacks + 1
        assert [smap.pos[i] for i in smap.order] == list(range(4))

    def test_order_stays_topological_on_acyclic_designs(self):
        net = build_pipeline(["eb", "func", "func", "eb"], 0.0, 1,
                             list(range(10)))
        session = Session(net)
        sim = session.simulator()
        for channel in list(session.netlist.channels):
            session.insert_bubble(channel)
        smap = sim._smap
        pos = {i: p for p, i in enumerate(smap.order)}
        for u, targets in enumerate(smap._succ):
            for v in targets:
                assert pos[u] < pos[v], "seed order violates a dependency"


class TestLoopDiagnosticsParity:
    def _mixed_net(self):
        net = Netlist("mixed")
        net.add(ListSource("src", [1, 2]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(Func("g", lambda x: x, n_inputs=1))
        net.connect("f.o", "g.i0", name="a")
        net.connect("g.o", "f.i0", name="b")
        return net

    def test_patched_simulator_same_loop_diagnosis(self):
        """A transform on the healthy region of a design with a
        combinational cycle: the patched simulator must report exactly the
        diagnosis a rebuilt one does."""
        session = Session(self._mixed_net())
        sim = session.simulator()
        session.insert_bubble("in")
        sim.reset()
        with pytest.raises(CombinationalLoopError) as patched:
            sim.step()
        rebuilt = Simulator(session.netlist.clone())
        with pytest.raises(CombinationalLoopError) as reference:
            rebuilt.step()
        assert sorted(patched.value.unresolved) == sorted(reference.value.unresolved)


class TestStaleStructureGuards:
    def _edited(self, engine):
        net = build_pipeline(["eb"], 0.0, 0, [1, 2, 3])
        sim = Simulator(net, engine=engine)
        insert_bubble(net, "c0")
        return sim

    @pytest.mark.parametrize("engine", ["worklist", "naive", "batch"])
    def test_unpatched_simulator_refuses_to_step(self, engine):
        sim = self._edited(engine)
        with pytest.raises(RuntimeError, match="structurally edited"):
            sim.step()

    def test_unpatched_simulator_refuses_step_with_choices(self):
        sim = self._edited("worklist")
        with pytest.raises(RuntimeError, match="structurally edited"):
            sim.step_with_choices({})

    def test_batch_simulator_lane_guard(self):
        nets = [build_pipeline(["eb"], 0.0, seed, [1, 2]) for seed in (0, 1)]
        sim = BatchSimulator(nets)
        insert_bubble(nets[1], "c0")
        with pytest.raises(RuntimeError, match="lane 1"):
            sim.step()

    def test_batch_wrapper_follow_edits_still_invalidates(self):
        """The batch wrapper 'follows' conservatively: the edit is observed
        but invalidates the simulator instead of patching it."""
        net = build_pipeline(["eb"], 0.0, 0, [1, 2])
        sim = Simulator(net, engine="batch", follow_edits=True)
        insert_bubble(net, "c0")
        with pytest.raises(RuntimeError, match="batch engine"):
            sim.step()

    def test_manual_apply_edit_revalidates(self):
        net = build_pipeline(["eb", "func"], 0.0, 3, list(range(8)))
        sim = Simulator(net)
        edits = []
        net.subscribe(edits.append)
        insert_bubble(net, "c0")
        with pytest.raises(RuntimeError):
            sim.step()
        for edit in edits:
            sim.apply_edit(edit)
        sim.reset()
        sim.run(40)
        assert net.nodes["snk"].values == list(range(8))

    def test_superseded_follower_detaches_instead_of_stealing(self):
        """A still-subscribed older simulator must not steal ownership of
        channels created after a newer simulator took over."""
        net = build_pipeline(["eb"], 0.0, 0, [1, 2, 3])
        old = Simulator(net, follow_edits=True)
        new = Simulator(net)                  # takes ownership of the logs
        edits = []
        net.subscribe(edits.append)
        insert_bubble(net, "c0")              # old observes, must detach
        assert old._followed is None
        with pytest.raises(RuntimeError):
            old.step()
        # the newer simulator can be patched with the same edits and run
        for edit in edits:
            new.apply_edit(edit)
        new.reset()
        new.run(40)
        assert net.nodes["snk"].values == [1, 2, 3]


class TestWarmMeasurementParity:
    def test_session_measure_matches_rebuild_measure(self):
        from repro.perf.throughput import measure_throughput

        net = build_pipeline(["eb", "func", "eb"], 0.3, 9, list(range(50)))
        session = Session(net)
        session.insert_bubble("c0")
        warm = session.measure("out", cycles=120, warmup=20)
        cold = measure_throughput(session.netlist, "out", cycles=120, warmup=20)
        assert warm.transfers == cold.transfers
        assert warm.throughput == cold.throughput
        # repeat measurements on the warm simulator are reproducible
        again = session.measure("out", cycles=120, warmup=20)
        assert again.transfers == warm.transfers

    def test_reuse_simulator_rejects_foreign_netlist(self):
        from repro.perf.throughput import measure_throughput

        net_a = build_pipeline(["eb"], 0.0, 0, [1, 2])
        net_b = build_pipeline(["eb"], 0.0, 0, [1, 2])
        sim_a = Simulator(net_a)
        with pytest.raises(ValueError, match="reuse_simulator"):
            measure_throughput(net_b, "out", reuse_simulator=sim_a)

    def test_pure_stream_designs_measure_reproducibly(self):
        """The canned fig6b/fig7b designs (the `explore` CLI surface) use
        index-seeded pure op streams, so repeated warm measurements of the
        same design point return identical figures."""
        from repro.cli import _DESIGNS

        for design in ("fig6b", "fig7b"):
            session = Session(_DESIGNS[design]())
            first = session.measure("out", cycles=150, warmup=20)
            second = session.measure("out", cycles=150, warmup=20)
            assert first.transfers == second.transfers, design

    def test_mcr_cache_tracks_structural_version(self):
        from fractions import Fraction

        from repro.netlist import patterns

        net, _names = patterns.fig1b(lambda g: 0)
        session = Session(net)
        first = session.mcr()
        assert session.mcr() == first          # memo hit on same version
        session.insert_bubble("mux_f")
        assert session.mcr() is not None       # recomputed after the edit
        assert isinstance(first, Fraction)
