"""Unit tests for combinational function blocks (lazy-join control)."""

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import KillerSink, ListSource, Sink
from repro.elastic.functional import Func, const_block, identity_block
from repro.netlist.graph import Netlist

from helpers import run, single_node_net, sink_values


def two_input_net(a_values, b_values, fn, stall_rate=0.0, kill_rate=None, seed=0):
    net = Netlist("t")
    net.add(Func("f", fn, n_inputs=2))
    net.add(ListSource("a", list(a_values)))
    net.add(ListSource("b", list(b_values)))
    if kill_rate is None:
        net.add(Sink("snk", stall_rate=stall_rate, seed=seed))
    else:
        net.add(KillerSink("snk", kill_rate=kill_rate, seed=seed))
    net.connect("a.o", "f.i0", name="ca")
    net.connect("b.o", "f.i1", name="cb")
    net.connect("f.o", "snk.i", name="out")
    net.validate()
    return net


class TestBasics:
    def test_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            Func("f", lambda: 0, n_inputs=0)

    def test_identity_passthrough_zero_latency(self):
        net = single_node_net(identity_block("f"), in_values=[7, 8])
        run(net, 4)
        # Combinational block: transfer happens the same cycle it is offered.
        assert net.nodes["snk"].received == [(0, 7), (1, 8)]

    def test_const_block(self):
        net = single_node_net(const_block("f", 99), in_values=[1, 2, 3])
        run(net, 5)
        assert sink_values(net) == [99, 99, 99]

    def test_applies_function(self):
        net = single_node_net(Func("f", lambda x: x * 10, n_inputs=1),
                              in_values=[1, 2, 3])
        run(net, 5)
        assert sink_values(net) == [10, 20, 30]


class TestLazyJoin:
    def test_waits_for_all_inputs(self):
        """With input b arriving late, output pairs respect arrival order."""
        net = two_input_net([1, 2, 3], [10], lambda a, b: a + b)
        run(net, 6)
        assert sink_values(net) == [11]

    def test_pairs_in_order(self):
        net = two_input_net([1, 2, 3], [10, 20, 30], lambda a, b: (a, b))
        run(net, 6)
        assert sink_values(net) == [(1, 10), (2, 20), (3, 30)]

    def test_back_pressure_stalls_both_inputs(self):
        net = two_input_net([1, 2], [3, 4], lambda a, b: a + b, stall_rate=1.0)
        run(net, 6)
        assert sink_values(net) == []
        # Tokens still waiting at the sources (persistent).
        assert net.nodes["a"].emitted == 0
        assert net.nodes["b"].emitted == 0

    def test_random_stalls_lose_nothing(self):
        a = list(range(20))
        b = list(range(100, 120))
        net = two_input_net(a, b, lambda x, y: x + y, stall_rate=0.5, seed=3)
        run(net, 200)
        assert sink_values(net) == [x + y for x, y in zip(a, b)]


class TestAntiTokens:
    def test_output_kill_propagates_to_all_inputs(self):
        """One output anti-token must destroy exactly one token pair."""
        net = two_input_net([1, 2, 3], [10, 20, 30], lambda a, b: a + b,
                            kill_rate=1.0)
        run(net, 20)
        assert sink_values(net) == []       # everything killed
        # All six input tokens are gone (none left waiting).
        assert net.nodes["a"].exhausted
        assert net.nodes["b"].exhausted

    def test_kill_with_partial_inputs(self):
        """Kill arrives while only input a has tokens: a's tokens must be
        destroyed without waiting for b."""
        net = two_input_net([1, 2], [], lambda a, b: a + b, kill_rate=1.0)
        run(net, 15)
        assert net.nodes["a"].exhausted
        assert net.nodes["f"].snapshot()[0] >= 0

    def test_mixed_kills_preserve_pairing(self):
        """Killed pairs are killed atomically: survivors are still aligned."""
        a = list(range(10))
        b = list(range(100, 110))
        net = two_input_net(a, b, lambda x, y: (x, y), kill_rate=0.3, seed=5)
        run(net, 100)
        for x, y in sink_values(net):
            assert y == x + 100


class TestThroughFuncAndBuffer:
    def test_buffered_function_pipeline(self):
        net = Netlist("p")
        net.add(ListSource("src", list(range(10))))
        net.add(ElasticBuffer("eb1"))
        net.add(Func("f", lambda x: x + 1, n_inputs=1))
        net.add(ElasticBuffer("eb2"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb1.i", name="c0")
        net.connect("eb1.o", "f.i0", name="c1")
        net.connect("f.o", "eb2.i", name="c2")
        net.connect("eb2.o", "snk.i", name="c3")
        run(net, 20)
        assert sink_values(net) == [x + 1 for x in range(10)]
