"""Tests for trace recording, Table-1-style rendering and VCD export."""

import os

from repro.netlist import patterns
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder, VcdWriter, format_trace_table, _letters


class TestLetterGenerator:
    def test_sequence(self):
        gen = _letters()
        first = [next(gen) for _ in range(30)]
        assert first[:4] == ["A", "B", "C", "D"]
        assert first[25] == "Z"
        assert first[26] == "AA"
        assert first[27] == "AB"


class TestSymbols:
    def test_bubble_token_anti_rendering(self):
        net, names = patterns.table1_design()
        trace = TraceRecorder([names["fout1"]])
        Simulator(net, observers=[trace]).run(7)
        row = trace.symbol_rows()[names["fout1"]]
        # letters are assigned per recorder: this one only watches Fout1,
        # so its tokens become A, B, C (B, D, G in the full Table 1).
        assert row == ["-", "A", "*", "B", "-", "C", "-"]

    def test_letters_assigned_in_appearance_order(self):
        net, names = patterns.table1_design()
        trace = TraceRecorder([names["fin0"], names["fin1"]])
        Simulator(net, observers=[trace]).run(3)
        rows = trace.symbol_rows()
        assert rows[names["fin0"]][0] == "A"    # first visible token
        assert rows[names["fin1"]][1] == "B"    # second distinct token

    def test_value_rows_expose_raw_data(self):
        net, names = patterns.table1_design()
        trace = TraceRecorder([names["ebin"]])
        Simulator(net, observers=[trace]).run(3)
        values = trace.value_rows()[names["ebin"]]
        assert values[0] == (0, 1)              # branch 0, generation 1
        assert values[2] is None                # stall cycle


class TestFormatting:
    def test_aliases_used(self):
        net, names = patterns.table1_design()
        trace = TraceRecorder([names["fin0"]], aliases={names["fin0"]: "Fin0"})
        Simulator(net, observers=[trace]).run(2)
        text = format_trace_table(trace)
        assert "Fin0" in text

    def test_extra_rows_appended(self):
        net, names = patterns.table1_design()
        trace = TraceRecorder([names["fin0"]])
        Simulator(net, observers=[trace]).run(3)
        text = format_trace_table(trace, extra_rows={"Sel": [0, 1, 1]})
        assert "Sel" in text

    def test_cycle_header(self):
        net, names = patterns.table1_design()
        trace = TraceRecorder([names["fin0"]])
        Simulator(net, observers=[trace]).run(4)
        assert format_trace_table(trace).splitlines()[0].startswith("Cycle")


class TestVcd:
    def test_vcd_file_well_formed(self, tmp_path):
        net, names = patterns.table1_design()
        vcd = VcdWriter([names["fin0"], names["ebin"]])
        Simulator(net, observers=[vcd]).run(7)
        path = vcd.write(os.path.join(tmp_path, "trace.vcd"))
        with open(path) as fh:
            text = fh.read()
        assert "$timescale" in text
        assert "$enddefinitions" in text
        assert "#0" in text
        # two channels x four control bits declared
        assert text.count("$var wire 1") == 8

    def test_vcd_only_emits_changes(self, tmp_path):
        net = patterns.eb_chain(1, source_values=[])   # nothing ever moves
        vcd = VcdWriter(["ch0"])
        Simulator(net, observers=[vcd]).run(5)
        path = vcd.write(os.path.join(tmp_path, "idle.vcd"))
        with open(path) as fh:
            body = fh.read().split("$enddefinitions $end")[1]
        # initial values at #0 plus the final end-of-trace timestamp
        assert body.count("#") <= 3
