"""Tests for the canned pattern netlists and the variable-latency unit."""

import pytest

from repro.elastic.environment import KillerSink, ListSource, Sink
from repro.elastic.varlat import VariableLatencyUnit
from repro.netlist import patterns
from repro.netlist.graph import Netlist
from repro.sim.engine import Simulator
from repro.sim.stats import TransferLog

from helpers import run, sink_values


class TestFig1Patterns:
    def test_all_variants_validate(self):
        sel = lambda g: 0   # noqa: E731
        for make in (patterns.fig1a, patterns.fig1b, patterns.fig1c,
                     patterns.fig1d):
            net, names = make(sel)
            assert net.validate()
            assert "ebin" in names

    def test_fig1d_buffer_modes(self):
        sel = lambda g: 0   # noqa: E731
        for mode, kind in [("standard", "eb"), ("zbl", "zbl_eb")]:
            net, names = patterns.fig1d(sel, buffers=mode)
            assert len(names["buffers"]) == 2
            for name in names["buffers"]:
                assert net.nodes[name].kind == kind

    def test_fig1a_loop_streams_generations(self):
        net, names = patterns.fig1a(lambda g: g % 2)
        log = TransferLog([names["ebin"]])
        Simulator(net, observers=[log]).run(12)
        generations = [gen for _b, gen in log.values(names["ebin"])]
        assert generations == list(range(1, len(generations) + 1))

    def test_table1_sel_fn(self):
        assert [patterns.table1_sel_fn(g) for g in range(1, 6)] == [0, 1, 1, 0, 0]
        assert patterns.table1_sel_fn(99) == 0


class TestRingAndChainPatterns:
    def test_ring_token_placement(self):
        net = patterns.token_ring(4, 3)
        total = sum(net.nodes[f"eb{i}"].count for i in range(4))
        assert total == 3

    def test_ring_rejects_overfull(self):
        with pytest.raises(ValueError):
            patterns.token_ring(2, 5)

    def test_chain_delivers_everything(self):
        net = patterns.eb_chain(5, source_values=list(range(9)))
        run(net, 30)
        assert sink_values(net) == list(range(9))

    def test_pipeline_applies_function_chain(self):
        net = patterns.pipeline_with_func([1, 2, 3], lambda x: x + 1,
                                          n_stages=3)
        run(net, 20)
        assert sink_values(net) == [4, 5, 6]


class TestVariableLatencyUnit:
    def unit_net(self, values, err_on, kill_rate=None):
        unit = VariableLatencyUnit("vl", fn=lambda x: x * 10,
                                   err_fn=lambda x: x in err_on)
        net = Netlist("t")
        net.add(unit)
        net.add(ListSource("src", list(values)))
        if kill_rate is None:
            net.add(Sink("snk"))
        else:
            net.add(KillerSink("snk", kill_rate=kill_rate))
        net.connect("src.o", "vl.i", name="in")
        net.connect("vl.o", "snk.i", name="out")
        net.validate()
        return net, unit

    def test_fast_ops_single_cycle_throughput(self):
        net, unit = self.unit_net(range(8), err_on=())
        run(net, 12)
        cycles = [c for c, _v in net.nodes["snk"].received]
        assert cycles == list(range(1, 9))       # one result per cycle
        assert unit.slow_ops == 0

    def test_slow_op_costs_one_extra_cycle(self):
        net, unit = self.unit_net([1, 2, 3], err_on=(2,))
        run(net, 10)
        cycles = [c for c, _v in net.nodes["snk"].received]
        assert net.nodes["snk"].values == [10, 20, 30]
        # op 2 stalls one extra cycle; op 3 slips behind it
        assert cycles == [1, 3, 4]
        assert unit.slow_ops == 1

    def test_all_slow_halves_throughput(self):
        net, _unit = self.unit_net(range(6), err_on=set(range(6)))
        run(net, 16)
        cycles = [c for c, _v in net.nodes["snk"].received]
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        assert all(g == 2 for g in gaps)

    def test_results_always_exact(self):
        net, _unit = self.unit_net(range(10), err_on={3, 4, 7})
        run(net, 30)
        assert sink_values(net) == [x * 10 for x in range(10)]

    def test_ready_head_can_be_killed(self):
        net, _unit = self.unit_net([5], err_on=(), kill_rate=1.0)
        run(net, 8)
        assert net.nodes["snk"].values == []
        assert net.nodes["snk"].kills_sent >= 1

    def test_counters_track_ops(self):
        net, unit = self.unit_net(range(5), err_on={1, 2})
        run(net, 20)
        assert unit.total_ops == 5
        assert unit.slow_ops == 2
