"""Unit tests for the simulation engine: fix-point behaviour, combinational
loop detection, monitors and statistics plumbing."""

import pytest

from repro.elastic.buffers import ElasticBuffer, ZeroBackwardLatencyBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.functional import Func
from repro.errors import CombinationalLoopError
from repro.netlist.graph import Netlist
from repro.sim.engine import Simulator
from repro.sim.monitors import BoundedLivenessMonitor
from repro.sim.stats import TransferLog

from helpers import run, sink_values


class TestFixpoint:
    def test_resolves_long_combinational_chain(self):
        """A chain of zero-delay blocks resolves within the sweep bound."""
        net = Netlist("chain")
        net.add(ListSource("src", [1, 2, 3]))
        prev = "src.o"
        for i in range(10):
            net.add(Func(f"f{i}", lambda x: x + 1, n_inputs=1))
            net.connect(prev, f"f{i}.i0", name=f"c{i}")
            prev = f"f{i}.o"
        net.add(Sink("snk"))
        net.connect(prev, "snk.i", name="out")
        run(net, 5)
        assert sink_values(net) == [11, 12, 13]

    def test_combinational_loop_detected(self):
        """A ring made only of combinational blocks cannot resolve."""
        net = Netlist("loop")
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(Func("g", lambda x: x, n_inputs=1))
        net.connect("f.o", "g.i0", name="a")
        net.connect("g.o", "f.i0", name="b")
        sim = Simulator(net)
        with pytest.raises(CombinationalLoopError) as err:
            sim.step()
        assert err.value.unresolved

    def test_ring_with_buffer_resolves(self):
        net = Netlist("ring")
        net.add(ElasticBuffer("eb", init=[0]))
        net.add(Func("f", lambda x: x + 1, n_inputs=1))
        net.connect("eb.o", "f.i0", name="a")
        net.connect("f.o", "eb.i", name="b")
        sim = run(net, 10)
        assert net.nodes["eb"].contents() == [10]
        assert sim.stats.transfers["b"] == 10


class TestZblChains:
    def test_zbl_chain_resolves(self):
        """Several chained ZBL buffers still resolve (the combinational
        backward chain is acyclic)."""
        net = Netlist("zbl")
        net.add(ListSource("src", list(range(8))))
        prev = "src.o"
        for i in range(4):
            net.add(ZeroBackwardLatencyBuffer(f"z{i}"))
            net.connect(prev, f"z{i}.i", name=f"c{i}")
            prev = f"z{i}.o"
        net.add(Sink("snk"))
        net.connect(prev, "snk.i", name="out")
        run(net, 20)
        assert sink_values(net) == list(range(8))

    def test_zbl_ring_is_a_timing_loop_not_a_sim_loop(self):
        """A ring of ZBL buffers with a token: backward stop chain closes
        on itself; the fix-point must still resolve because each buffer's
        state cuts the valid chain."""
        net = Netlist("zblring")
        net.add(ZeroBackwardLatencyBuffer("z0", init=[1]))
        net.add(ZeroBackwardLatencyBuffer("z1"))
        net.connect("z0.o", "z1.i", name="a")
        net.connect("z1.o", "z0.i", name="b")
        sim = run(net, 6)
        assert sim.stats.transfers["a"] >= 2


class TestStats:
    def test_transfer_counting(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = run(net, 10)
        assert sim.stats.transfers["in"] == 3
        assert sim.stats.transfers["out"] == 3
        assert sim.stats.throughput("out") == pytest.approx(0.3)

    def test_summary_includes_idles_and_accounts_every_cycle(self):
        """Regression: ``summary()`` used to count idles but drop them
        from the rows; each channel's categories must partition the run."""
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = run(net, 10)
        for row in sim.stats.summary():
            assert "idles" in row and "utilization" in row
            total = (row["transfers"] + row["cancels"] + row["backwards"]
                     + row["stalls"] + row["idles"])
            assert total == sim.stats.cycles
        by_name = {row["channel"]: row for row in sim.stats.summary()}
        assert by_name["out"]["idles"] == 7
        assert by_name["out"]["utilization"] == pytest.approx(0.3)

    def test_transfer_log_records_stream(self):
        net = Netlist("p")
        net.add(ListSource("src", [5, 6]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        log = TransferLog(["out"])
        run(net, 6, observers=[log])
        assert log.values("out") == [5, 6]
        assert log.cycles("out") == [1, 2]


class TestLivenessMonitor:
    def test_stalled_channel_flagged(self):
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk", stall_rate=1.0))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        live = BoundedLivenessMonitor(net, window=8)
        run(net, 20, observers=[live])
        stuck_channels = [name for name, _cycle in live.stuck]
        # "in" carried the token into the EB and then went dead; "out" never
        # armed because it never saw any event.
        assert "in" in stuck_channels
        assert "out" not in stuck_channels

    def test_flowing_design_not_flagged(self):
        net = Netlist("p")
        net.add(ListSource("src", list(range(30))))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        live = BoundedLivenessMonitor(net, window=8)
        run(net, 25, observers=[live])
        assert live.stuck == []


class TestValidationOnConstruction:
    def test_simulator_validates(self):
        net = Netlist("bad")
        net.add(ElasticBuffer("eb"))
        with pytest.raises(Exception):
            Simulator(net)


class TestEngineSelection:
    def _pipeline(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        return net

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(self._pipeline(), engine="magic")

    def test_default_engine_switchable(self):
        from repro.sim.engine import get_default_engine, set_default_engine

        assert get_default_engine() == "worklist"
        set_default_engine("naive")
        try:
            assert Simulator(self._pipeline()).engine == "naive"
            with pytest.raises(ValueError):
                set_default_engine("magic")
        finally:
            set_default_engine("worklist")

    @pytest.mark.parametrize("engine", ["worklist", "naive"])
    def test_both_engines_simulate(self, engine):
        net = self._pipeline()
        sim = Simulator(net, engine=engine).run(10)
        assert sink_values(net) == [1, 2, 3]
        assert sim.stats.transfers["out"] == 3

    def test_stale_simulator_detected(self):
        """A netlist has one owning simulator: constructing a second one
        re-registers the change logs, so stepping the first must raise
        instead of silently missing change events."""
        net = self._pipeline()
        stale = Simulator(net)
        Simulator(net, engine="naive")
        with pytest.raises(RuntimeError, match="newer Simulator"):
            stale.step()


class TestEventCache:
    def test_events_resolved_once_per_cycle(self):
        """After a step every channel carries its cached events; repeated
        ``events()`` calls return the same object (no recomputation)."""
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = Simulator(net)
        sim.step()
        channel = net.channels["in"]
        assert channel.events_cache is not None
        assert channel.events() is channel.events()
        assert channel.events() is channel.events_cache

    def test_cache_invalidated_each_cycle(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = Simulator(net)
        sim.step()
        first = net.channels["in"].events()
        sim.step()
        assert net.channels["in"].events() is not first


class TestProfiling:
    @pytest.mark.parametrize("engine", ["worklist", "naive"])
    def test_profile_counts(self, engine):
        from repro.sim.profile import format_profile, profile_run

        net = Netlist("p")
        net.add(ListSource("src", list(range(5))))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        report = profile_run(net, cycles=10, engine=engine)
        assert report.engine == engine
        assert report.cycles == 10
        assert report.total_comb_calls >= 3 * 10   # every node, every cycle
        assert set(report.comb_calls_by_kind) == {"source", "eb", "sink"}
        text = format_profile(report)
        assert "comb() calls" in text and "histogram" in text

    def test_worklist_evaluates_each_node_once_on_registered_pipeline(self):
        """Levelization at work: an all-registered pipeline needs exactly
        one evaluation per node per cycle (the naive engine needs two full
        sweeps to detect quiescence)."""
        from repro.sim.profile import profile_run

        net = Netlist("p")
        net.add(ListSource("src", list(range(5))))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        report = profile_run(net, cycles=10, engine="worklist")
        assert report.total_comb_calls == 3 * 10
        naive = profile_run(net, cycles=10, engine="naive")
        assert naive.total_comb_calls == 2 * 3 * 10

    def test_profile_requires_flag(self):
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = Simulator(net)
        with pytest.raises(ValueError):
            sim.profile_report()
