"""Unit tests for the simulation engine: fix-point behaviour, combinational
loop detection, monitors and statistics plumbing."""

import pytest

from repro.elastic.buffers import ElasticBuffer, ZeroBackwardLatencyBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.functional import Func
from repro.errors import CombinationalLoopError
from repro.netlist.graph import Netlist
from repro.sim.engine import Simulator
from repro.sim.monitors import BoundedLivenessMonitor
from repro.sim.stats import TransferLog

from helpers import run, sink_values


class TestFixpoint:
    def test_resolves_long_combinational_chain(self):
        """A chain of zero-delay blocks resolves within the sweep bound."""
        net = Netlist("chain")
        net.add(ListSource("src", [1, 2, 3]))
        prev = "src.o"
        for i in range(10):
            net.add(Func(f"f{i}", lambda x: x + 1, n_inputs=1))
            net.connect(prev, f"f{i}.i0", name=f"c{i}")
            prev = f"f{i}.o"
        net.add(Sink("snk"))
        net.connect(prev, "snk.i", name="out")
        run(net, 5)
        assert sink_values(net) == [11, 12, 13]

    def test_combinational_loop_detected(self):
        """A ring made only of combinational blocks cannot resolve."""
        net = Netlist("loop")
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(Func("g", lambda x: x, n_inputs=1))
        net.connect("f.o", "g.i0", name="a")
        net.connect("g.o", "f.i0", name="b")
        sim = Simulator(net)
        with pytest.raises(CombinationalLoopError) as err:
            sim.step()
        assert err.value.unresolved

    def test_ring_with_buffer_resolves(self):
        net = Netlist("ring")
        net.add(ElasticBuffer("eb", init=[0]))
        net.add(Func("f", lambda x: x + 1, n_inputs=1))
        net.connect("eb.o", "f.i0", name="a")
        net.connect("f.o", "eb.i", name="b")
        sim = run(net, 10)
        assert net.nodes["eb"].contents() == [10]
        assert sim.stats.transfers["b"] == 10


class TestZblChains:
    def test_zbl_chain_resolves(self):
        """Several chained ZBL buffers still resolve (the combinational
        backward chain is acyclic)."""
        net = Netlist("zbl")
        net.add(ListSource("src", list(range(8))))
        prev = "src.o"
        for i in range(4):
            net.add(ZeroBackwardLatencyBuffer(f"z{i}"))
            net.connect(prev, f"z{i}.i", name=f"c{i}")
            prev = f"z{i}.o"
        net.add(Sink("snk"))
        net.connect(prev, "snk.i", name="out")
        run(net, 20)
        assert sink_values(net) == list(range(8))

    def test_zbl_ring_is_a_timing_loop_not_a_sim_loop(self):
        """A ring of ZBL buffers with a token: backward stop chain closes
        on itself; the fix-point must still resolve because each buffer's
        state cuts the valid chain."""
        net = Netlist("zblring")
        net.add(ZeroBackwardLatencyBuffer("z0", init=[1]))
        net.add(ZeroBackwardLatencyBuffer("z1"))
        net.connect("z0.o", "z1.i", name="a")
        net.connect("z1.o", "z0.i", name="b")
        sim = run(net, 6)
        assert sim.stats.transfers["a"] >= 2


class TestStats:
    def test_transfer_counting(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = run(net, 10)
        assert sim.stats.transfers["in"] == 3
        assert sim.stats.transfers["out"] == 3
        assert sim.stats.throughput("out") == pytest.approx(0.3)

    def test_summary_includes_idles_and_accounts_every_cycle(self):
        """Regression: ``summary()`` used to count idles but drop them
        from the rows; each channel's categories must partition the run."""
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = run(net, 10)
        for row in sim.stats.summary():
            assert "idles" in row and "utilization" in row
            total = (row["transfers"] + row["cancels"] + row["backwards"]
                     + row["stalls"] + row["idles"])
            assert total == sim.stats.cycles
        by_name = {row["channel"]: row for row in sim.stats.summary()}
        assert by_name["out"]["idles"] == 7
        assert by_name["out"]["utilization"] == pytest.approx(0.3)

    def test_transfer_log_records_stream(self):
        net = Netlist("p")
        net.add(ListSource("src", [5, 6]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        log = TransferLog(["out"])
        run(net, 6, observers=[log])
        assert log.values("out") == [5, 6]
        assert log.cycles("out") == [1, 2]


class TestLivenessMonitor:
    def test_stalled_channel_flagged(self):
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk", stall_rate=1.0))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        live = BoundedLivenessMonitor(net, window=8)
        run(net, 20, observers=[live])
        stuck_channels = [name for name, _cycle in live.stuck]
        # "in" carried the token into the EB and then went dead; "out" never
        # armed because it never saw any event.
        assert "in" in stuck_channels
        assert "out" not in stuck_channels

    def test_flowing_design_not_flagged(self):
        net = Netlist("p")
        net.add(ListSource("src", list(range(30))))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        live = BoundedLivenessMonitor(net, window=8)
        run(net, 25, observers=[live])
        assert live.stuck == []


class TestValidationOnConstruction:
    def test_simulator_validates(self):
        net = Netlist("bad")
        net.add(ElasticBuffer("eb"))
        with pytest.raises(Exception):
            Simulator(net)


class TestEngineSelection:
    def _pipeline(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        return net

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(self._pipeline(), engine="magic")

    def test_default_engine_switchable(self):
        from repro.sim.engine import get_default_engine, set_default_engine

        assert get_default_engine() == "worklist"
        set_default_engine("naive")
        try:
            assert Simulator(self._pipeline()).engine == "naive"
            with pytest.raises(ValueError):
                set_default_engine("magic")
        finally:
            set_default_engine("worklist")

    @pytest.mark.parametrize("engine", ["worklist", "naive"])
    def test_both_engines_simulate(self, engine):
        net = self._pipeline()
        sim = Simulator(net, engine=engine).run(10)
        assert sink_values(net) == [1, 2, 3]
        assert sim.stats.transfers["out"] == 3

    def test_stale_simulator_detected(self):
        """A netlist has one owning simulator: constructing a second one
        re-registers the change logs, so stepping the first must raise
        instead of silently missing change events."""
        net = self._pipeline()
        stale = Simulator(net)
        Simulator(net, engine="naive")
        with pytest.raises(RuntimeError, match="newer Simulator"):
            stale.step()


class TestEventCache:
    def test_events_resolved_once_per_cycle(self):
        """After a step every channel carries its cached events; repeated
        ``events()`` calls return the same object (no recomputation)."""
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = Simulator(net)
        sim.step()
        channel = net.channels["in"]
        assert channel.events_cache is not None
        assert channel.events() is channel.events()
        assert channel.events() is channel.events_cache

    def test_cache_invalidated_each_cycle(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = Simulator(net)
        sim.step()
        first = net.channels["in"].events()
        sim.step()
        assert net.channels["in"].events() is not first


class TestProfiling:
    @pytest.mark.parametrize("engine", ["worklist", "naive"])
    def test_profile_counts(self, engine):
        from repro.sim.profile import format_profile, profile_run

        net = Netlist("p")
        net.add(ListSource("src", list(range(5))))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        report = profile_run(net, cycles=10, engine=engine)
        assert report.engine == engine
        assert report.cycles == 10
        assert report.total_comb_calls >= 3 * 10   # every node, every cycle
        assert set(report.comb_calls_by_kind) == {"source", "eb", "sink"}
        text = format_profile(report)
        assert "comb() calls" in text and "histogram" in text

    def test_worklist_evaluates_each_node_once_on_registered_pipeline(self):
        """Levelization at work: an all-registered pipeline needs exactly
        one evaluation per node per cycle (the naive engine needs two full
        sweeps to detect quiescence)."""
        from repro.sim.profile import profile_run

        net = Netlist("p")
        net.add(ListSource("src", list(range(5))))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        report = profile_run(net, cycles=10, engine="worklist")
        assert report.total_comb_calls == 3 * 10
        naive = profile_run(net, cycles=10, engine="naive")
        assert naive.total_comb_calls == 2 * 3 * 10

    def test_profile_requires_flag(self):
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        sim = Simulator(net)
        with pytest.raises(ValueError):
            sim.profile_report()


class TestStaleNaiveSimulator:
    def _pipeline(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        return net

    def test_stale_naive_simulator_detected(self):
        """Regression: the naive engine must carry the same ownership guard
        as the worklist engine — stepping an old naive simulator after a
        newer worklist one is constructed would append spurious entries to
        the *new* simulator's change log."""
        net = self._pipeline()
        stale = Simulator(net, engine="naive")
        fresh = Simulator(net, engine="worklist")
        with pytest.raises(RuntimeError, match="newer Simulator"):
            stale.step()
        # The fresh simulator's change log was not polluted: it still
        # simulates correctly.
        fresh.run(10)
        assert sink_values(net) == [1, 2, 3]

    def test_stale_naive_detects_newer_batch(self):
        net = self._pipeline()
        stale = Simulator(net, engine="naive")
        Simulator(net, engine="batch")
        with pytest.raises(RuntimeError, match="newer Simulator"):
            stale.step()


class TestMaxIterationsValidation:
    def _pipeline(self):
        net = Netlist("p")
        net.add(ListSource("src", [1]))
        net.add(Sink("snk"))
        net.connect("src.o", "snk.i", name="out")
        return net

    def test_zero_rejected(self):
        """Regression: ``max_iterations=0`` used to be silently replaced by
        the default through ``max_iterations or (...)``."""
        with pytest.raises(ValueError, match="max_iterations"):
            Simulator(self._pipeline(), max_iterations=0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            Simulator(self._pipeline(), engine="naive", max_iterations=-3)

    def test_explicit_value_kept(self):
        sim = Simulator(self._pipeline(), engine="naive", max_iterations=1)
        assert sim.max_iterations == 1

    def test_default_when_none(self):
        net = self._pipeline()
        assert Simulator(net).max_iterations == len(net.nodes) + 2


class TestEventsMidFixpoint:
    def test_events_raise_on_unresolved_signals(self):
        """``Channel.events()`` during the fix-point (here: from inside a
        node's ``comb``) must raise on unresolved signals rather than
        returning stale events from the previous cycle."""
        net = Netlist("p")
        observations = []

        def probe_fn(x):
            # f2 has not been evaluated yet when f1 first fires, so
            # mid.sp is unknown here.
            try:
                net.channels["mid"].events()
                observations.append("resolved")
            except ValueError:
                observations.append("unresolved")
            return x

        net.add(ListSource("src", [1, 2, 3]))
        net.add(Func("f1", probe_fn, n_inputs=1))
        net.add(Func("f2", lambda x: x, n_inputs=1))
        net.add(Sink("snk"))
        net.connect("src.o", "f1.i0", name="in")
        net.connect("f1.o", "f2.i0", name="mid")
        net.connect("f2.o", "snk.i", name="out")
        sim = Simulator(net, engine="worklist")
        sim.step()
        assert observations[0] == "unresolved"
        # After the fix-point the same call resolves (and is cached).
        assert net.channels["mid"].events() is net.channels["mid"].events_cache

    def test_clear_cycle_resets_state_and_cache(self):
        """The consolidated per-cycle clear path drops the signals and the
        cached events together."""
        from repro.elastic.channel import Channel

        channel = Channel("c")
        channel.state.set("vp", True)
        channel.state.set("sp", False)
        channel.state.set("vm", False)
        channel.state.set("sm", False)
        channel.resolve_events()
        assert channel.events_cache is not None
        channel.clear_cycle()
        assert channel.events_cache is None
        assert channel.state.vp is None
        assert channel.state.unresolved_signals() == ["vp", "sp", "vm", "sm"]


class TestBatchEngineWrapper:
    def _pipeline(self):
        net = Netlist("p")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        return net

    def test_batch_engine_simulates(self):
        net = self._pipeline()
        sim = Simulator(net, engine="batch").run(10)
        assert sink_values(net) == [1, 2, 3]
        assert sim.stats.transfers["out"] == 3
        assert sim.engine == "batch"

    def test_batch_profile_report(self):
        """``profile_report()`` works on the batch engine: one seed pass
        per cycle, kernel evaluations counted per node position."""
        net = self._pipeline()
        sim = Simulator(net, engine="batch", profile=True)
        sim.run(20)
        report = sim.profile_report()
        assert report.engine == "batch"
        assert report.cycles == 20
        assert report.n_nodes == 3
        assert report.total_comb_calls >= 3 * 20
        assert report.sweeps_per_cycle == [1] * 20
        kinds = set(report.comb_calls_by_kind)
        assert {"source", "eb", "sink"} <= kinds

    def test_batch_profile_requires_flag(self):
        sim = Simulator(self._pipeline(), engine="batch")
        with pytest.raises(ValueError):
            sim.profile_report()

    def test_stale_batch_wrapper_detected(self):
        net = self._pipeline()
        stale = Simulator(net, engine="batch")
        Simulator(net, engine="worklist")
        with pytest.raises(RuntimeError, match="newer Simulator"):
            stale.step()

    def test_batch_wrapper_observers_list_is_live(self):
        """Observers appended after construction are honoured, exactly as
        on the scalar engines."""
        net = self._pipeline()
        sim = Simulator(net, engine="batch")
        log = TransferLog(["out"])
        sim.observers.append(log)
        sim.run(10)
        assert [v for _c, v in log.streams["out"]] == [1, 2, 3]
