"""Randomized netlist fuzzing.

Hypothesis builds random elastic pipelines (buffers, function blocks,
fork/join diamonds, killer sinks, random stall patterns) and random
transformation sequences, then checks the global invariants:

* the protocol monitors never fire (they raise on violation);
* no token is lost, duplicated or reordered end to end;
* transformations preserve transfer equivalence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic.buffers import ElasticBuffer, ZeroBackwardLatencyBuffer
from repro.elastic.environment import KillerSink, ListSource, Sink
from repro.elastic.fork import EagerFork
from repro.elastic.functional import Func
from repro.netlist.graph import Netlist
from repro.sim.engine import Simulator
from repro.transform.bubbles import insert_bubble, insert_zbl_buffer

STAGE = st.sampled_from(["eb", "zbl", "func", "eb", "func"])


def build_pipeline(stages, stall_rate, seed, values, kill=False):
    net = Netlist("fuzz")
    net.add(ListSource("src", list(values)))
    prev = "src.o"
    for i, stage in enumerate(stages):
        if stage == "eb":
            net.add(ElasticBuffer(f"n{i}"))
            net.connect(prev, f"n{i}.i", name=f"c{i}")
            prev = f"n{i}.o"
        elif stage == "zbl":
            net.add(ZeroBackwardLatencyBuffer(f"n{i}"))
            net.connect(prev, f"n{i}.i", name=f"c{i}")
            prev = f"n{i}.o"
        else:
            net.add(Func(f"n{i}", lambda x: x, n_inputs=1))
            net.connect(prev, f"n{i}.i0", name=f"c{i}")
            prev = f"n{i}.o"
    if kill:
        net.add(KillerSink("snk", kill_rate=0.25, stall_rate=stall_rate,
                           seed=seed))
    else:
        net.add(Sink("snk", stall_rate=stall_rate, seed=seed))
    net.connect(prev, "snk.i", name="out")
    net.validate()
    return net


class TestPipelineFuzz:
    @given(stages=st.lists(STAGE, min_size=1, max_size=7),
           stall=st.floats(0.0, 0.9),
           seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_no_loss_no_reorder(self, stages, stall, seed):
        values = list(range(25))
        net = build_pipeline(stages, stall, seed, values)
        # budget scales with back-pressure so heavy stalls still drain
        Simulator(net).run(250 + int(900 * stall))
        received = net.nodes["snk"].values
        assert received == values[:len(received)]
        assert len(received) == len(values)

    @given(stages=st.lists(STAGE, min_size=1, max_size=5),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_kills_preserve_order_of_survivors(self, stages, seed):
        values = list(range(20))
        net = build_pipeline(stages, 0.2, seed, values, kill=True)
        Simulator(net).run(250)
        received = net.nodes["snk"].values
        # survivors form an ordered subsequence of the input
        it = iter(values)
        for v in received:
            assert any(v == w for w in it)

    @given(stages=st.lists(STAGE, min_size=1, max_size=5),
           inserts=st.lists(st.tuples(st.integers(0, 4), st.booleans()),
                            max_size=3),
           stall=st.floats(0.0, 0.7),
           seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_random_buffer_insertions_equivalent(self, stages, inserts,
                                                 stall, seed):
        values = list(range(20))
        base = build_pipeline(stages, stall, seed, values)
        mutated = build_pipeline(stages, stall, seed, values)
        for idx, use_zbl in inserts:
            channel = f"c{idx % len(stages)}"
            if use_zbl:
                insert_zbl_buffer(mutated, channel)
            else:
                insert_bubble(mutated, channel)
        Simulator(base).run(300)
        Simulator(mutated).run(300)
        a = base.nodes["snk"].values
        b = mutated.nodes["snk"].values
        assert a == values
        assert b == values


class TestForkJoinFuzz:
    @given(stall0=st.floats(0.0, 0.8), stall1=st.floats(0.0, 0.8),
           seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_diamond_rejoins_consistently(self, stall0, stall1, seed):
        """fork -> two buffered paths -> join: both copies of each token
        must rejoin in lockstep whatever the stall pattern."""
        values = list(range(15))
        net = Netlist("diamond")
        net.add(ListSource("src", values))
        net.add(EagerFork("fork", n_outputs=2))
        net.add(ElasticBuffer("p0"))
        net.add(ElasticBuffer("p1a"))
        net.add(ElasticBuffer("p1b"))
        net.add(Func("join", lambda a, b: (a, b), n_inputs=2))
        net.add(Sink("snk", stall_rate=stall0, seed=seed))
        net.connect("src.o", "fork.i", name="in")
        net.connect("fork.o0", "p0.i", name="a0")
        net.connect("p0.o", "join.i0", name="a1")
        net.connect("fork.o1", "p1a.i", name="b0")
        net.connect("p1a.o", "p1b.i", name="b1")
        net.connect("p1b.o", "join.i1", name="b2")
        net.connect("join.o", "snk.i", name="out")
        Simulator(net).run(200)
        for a, b in net.nodes["snk"].values:
            assert a == b
        assert [a for a, _b in net.nodes["snk"].values] == values
