"""Differential testing of the two fix-point engines.

The event-driven worklist engine and the dense-sweep naive engine must be
*behaviourally identical*: same transfer streams, same per-channel
statistics, same protocol verdicts, same combinational-loop diagnostics,
same model-checking state graphs.  These tests fuzz random netlists (the
:mod:`test_fuzz` generators plus canned paper designs) and compare the two
engines run for run.
"""

import random

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.eemux import EarlyEvalMux
from repro.elastic.environment import NondetSink, NondetSource
from repro.elastic.fork import EagerFork
from repro.elastic.functional import Func
from repro.errors import CombinationalLoopError
from repro.netlist import patterns
from repro.netlist.graph import Netlist
from repro.sim.engine import ENGINES, Simulator
from repro.sim.stats import TransferLog
from repro.verif.explore import StateExplorer

from test_fuzz import build_pipeline

#: number of random pipelines in the fuzz sweep (acceptance floor: 50).
N_RANDOM_NETLISTS = 60


def _stats_dict(sim):
    s = sim.stats
    return {
        "cycles": s.cycles,
        "transfers": s.transfers,
        "cancels": s.cancels,
        "backwards": s.backwards,
        "stalls": s.stalls,
        "idles": s.idles,
    }


def _run_one(make_net, engine, cycles):
    net = make_net()
    log = TransferLog(list(net.channels))
    sim = Simulator(net, engine=engine, observers=[log])
    sim.run(cycles)
    streams = {name: log.streams[name] for name in net.channels}
    return net, _stats_dict(sim), streams


def assert_engines_identical(make_net, cycles=250, sink="snk"):
    """Run ``make_net()`` once per engine and compare everything observable:
    transfer streams (values *and* cycles) of every channel, the full
    per-channel statistics, and the sink's received stream."""
    net_w, stats_w, streams_w = _run_one(make_net, "worklist", cycles)
    net_n, stats_n, streams_n = _run_one(make_net, "naive", cycles)
    assert streams_w == streams_n
    assert stats_w == stats_n
    if sink is not None and sink in net_w.nodes:
        assert net_w.nodes[sink].values == net_n.nodes[sink].values


def _random_pipeline_params(seed):
    rng = random.Random(seed)
    n_stages = rng.randint(1, 7)
    stages = [rng.choice(["eb", "zbl", "func"]) for _ in range(n_stages)]
    stall = rng.choice([0.0, 0.2, 0.5, 0.8])
    kill = rng.random() < 0.4
    return stages, stall, kill


class TestRandomPipelines:
    @pytest.mark.parametrize("seed", range(N_RANDOM_NETLISTS))
    def test_engines_bit_identical(self, seed):
        stages, stall, kill = _random_pipeline_params(seed)
        values = list(range(25))

        def make():
            return build_pipeline(stages, stall, seed, values, kill=kill)

        assert_engines_identical(make, cycles=250)


class TestPaperDesigns:
    def test_fig1d_identical(self):
        assert_engines_identical(
            lambda: patterns.fig1d(lambda g: g % 2)[0], cycles=200, sink=None
        )

    def test_fig1a_identical(self):
        assert_engines_identical(
            lambda: patterns.fig1a(lambda g: (g // 2) % 2)[0], cycles=200,
            sink=None,
        )

    def test_deep_zbl_pipeline_identical(self):
        assert_engines_identical(
            lambda: patterns.deep_pipeline(8, source_values=list(range(100)),
                                           stall_rate=0.4),
            cycles=200,
        )

    def test_fork_join_diamond_identical(self):
        def make():
            net = Netlist("diamond")
            from repro.elastic.environment import ListSource, Sink

            net.add(ListSource("src", list(range(15))))
            net.add(EagerFork("fork", n_outputs=2))
            net.add(ElasticBuffer("p0"))
            net.add(ElasticBuffer("p1a"))
            net.add(ElasticBuffer("p1b"))
            net.add(Func("join", lambda a, b: (a, b), n_inputs=2))
            net.add(Sink("snk", stall_rate=0.3, seed=7))
            net.connect("src.o", "fork.i", name="in")
            net.connect("fork.o0", "p0.i", name="a0")
            net.connect("p0.o", "join.i0", name="a1")
            net.connect("fork.o1", "p1a.i", name="b0")
            net.connect("p1a.o", "p1b.i", name="b1")
            net.connect("p1b.o", "join.i1", name="b2")
            net.connect("join.o", "snk.i", name="out")
            return net

        assert_engines_identical(make, cycles=200)


class TestLoopDiagnostics:
    def _loop_net(self):
        net = Netlist("loop")
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(Func("g", lambda x: x, n_inputs=1))
        net.connect("f.o", "g.i0", name="a")
        net.connect("g.o", "f.i0", name="b")
        return net

    def test_same_unresolved_signals(self):
        """Both engines must flag the same combinational loop with the same
        unresolved-signal diagnosis."""
        diagnoses = {}
        for engine in ENGINES:
            sim = Simulator(self._loop_net(), engine=engine)
            with pytest.raises(CombinationalLoopError) as err:
                sim.step()
            diagnoses[engine] = (sorted(err.value.unresolved), err.value.cycle)
        assert diagnoses["worklist"] == diagnoses["naive"]

    def test_partial_loop_same_diagnosis(self):
        """A loop hanging off a working pipeline: the healthy part resolves,
        the cyclic part is reported — identically on both engines."""

        def make_net():
            net = Netlist("mixed")
            from repro.elastic.environment import ListSource, Sink

            net.add(ListSource("src", [1, 2]))
            net.add(ElasticBuffer("eb"))
            net.add(Sink("snk"))
            net.connect("src.o", "eb.i", name="in")
            net.connect("eb.o", "snk.i", name="out")
            net.add(Func("f", lambda x: x, n_inputs=1))
            net.add(Func("g", lambda x: x, n_inputs=1))
            net.connect("f.o", "g.i0", name="a")
            net.connect("g.o", "f.i0", name="b")
            return net

        diagnoses = {}
        for engine in ENGINES:
            sim = Simulator(make_net(), engine=engine)
            with pytest.raises(CombinationalLoopError) as err:
                sim.step()
            diagnoses[engine] = sorted(err.value.unresolved)
        assert diagnoses["worklist"] == diagnoses["naive"]


class TestChaosSaboteurs:
    """Saboteur nodes (:mod:`repro.chaos`) are ordinary nodes to the
    engines: a chaos-wrapped corpus pipeline must stay bit-identical
    across engines, injections and all."""

    @pytest.mark.parametrize("seed", range(8))
    def test_wrapped_pipeline_bit_identical(self, seed):
        from repro.chaos import ChaosPlan, wrap

        stages, stall, kill = _random_pipeline_params(seed)
        values = list(range(25))

        def make():
            net = build_pipeline(stages, stall, seed, values, kill=kill)
            plan = ChaosPlan.seeded(seed, list(net.channels),
                                    kinds=("stall", "bubble", "corrupt"),
                                    coverage=0.6)
            wrap(net, plan)
            return net

        assert_engines_identical(make, cycles=400)


class TestModelChecking:
    def test_explorer_state_graphs_match(self):
        """The explicit-state explorer must enumerate the same reachable
        state space through either engine."""

        def make():
            net = Netlist("mc")
            net.add(NondetSource("src"))
            net.add(ElasticBuffer("eb"))
            net.add(NondetSink("snk", can_kill=True))
            net.connect("src.o", "eb.i", name="in")
            net.connect("eb.o", "snk.i", name="out")
            return net

        results = {}
        for engine in ENGINES:
            result = StateExplorer(make(), max_states=5000,
                                   engine=engine).explore()
            results[engine] = (
                result.n_states,
                len(result.transitions),
                sorted(result.violations),
                result.complete,
            )
        assert results["worklist"] == results["naive"]

    def test_explorer_speculative_composition_matches(self):
        """Shared module + EE mux under the toggle scheduler — the paper's
        Section 4.2 composition — explores identically on both engines."""
        from test_verif import shared_mux_mc_net
        from repro.core.scheduler import ToggleScheduler

        results = {}
        for engine in ENGINES:
            net = shared_mux_mc_net(ToggleScheduler(2))
            result = StateExplorer(net, max_states=30000,
                                   engine=engine).explore()
            results[engine] = (result.n_states, len(result.transitions),
                               sorted(result.violations), result.complete)
        assert results["worklist"] == results["naive"]
