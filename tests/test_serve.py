"""Fault-matrix and resilience tests for :mod:`repro.serve`.

The acceptance bar mirrors the PR 6 runtime layer: **every injected
fault must surface as a structured error or a degraded-but-correct
result — never a hung client, a dead server, or a wrong answer served
from the cache.**  The suite drives a real server (in a background
thread for the fast cases, a real subprocess for the SIGKILL/SIGTERM
cases) through deterministic :class:`~repro.runtime.faults.FaultPlan`
schedules at each of the five server fault sites — ``serve_admit``,
``serve_execute``, ``serve_cache``, ``serve_journal``, ``serve_drain``
— plus cache corruption, admission backpressure, deadlines, client
cancellation, poison-job quarantine and kill-to-restart resume, and
pins the recovered payloads byte-identical to clean runs.
"""

import asyncio
import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import CheckpointError, JobRejected, ServeError
from repro.runtime.faults import Fault, FaultPlan, corrupt_checkpoint
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, wait_for_endpoint
from repro.serve.jobs import job_key, run_job, validate_job
from repro.serve.journal import JobJournal
from repro.serve.protocol import (
    encode_message,
    recv_message,
    send_message,
)
from repro.serve.server import JobServer

LINT_SPEC = {"kind": "lint", "design": "fig1a"}
MEASURE_SPEC = {"kind": "measure", "design": "fig1a", "cycles": 200}
SWEEP_SPEC = {"kind": "sweep", "grid": "fig6", "cycles": 120}
#: full-length grid (~1s): long enough that a drain or SIGKILL lands
#: mid-run instead of racing the job to completion
LONG_SWEEP_SPEC = {"kind": "sweep", "grid": "fig6"}


def canonical(payload):
    """The byte-identity every resume/cache assertion compares."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


@contextlib.contextmanager
def running_server(root, **kwargs):
    """A live server in a background thread plus a connected client."""
    kwargs.setdefault("backoff", 0.0)
    server = JobServer(str(root), **kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run(ready=ready)), daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    client = ServeClient(root=str(root), timeout=60)
    try:
        yield server, client
    finally:
        if not server.draining:
            with contextlib.suppress(ServeError):
                client.shutdown()
        thread.join(10)
        assert not thread.is_alive(), "server failed to drain"


# ---------------------------------------------------------------------------
# protocol framing


class TestProtocol:
    def test_blocking_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "status", "n": [1, 2, 3]})
            assert recv_message(b) == {"op": "status", "n": [1, 2, 3]}
            a.close()
            assert recv_message(b) is None      # clean EOF
        finally:
            b.close()

    def test_encoding_is_byte_stable(self):
        assert encode_message({"b": 1, "a": 2}) == encode_message(
            {"a": 2, "b": 1})

    def test_torn_frame_is_loud(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_message({"x": 1})[:5])     # header + 1 byte
            a.close()
            with pytest.raises(ServeError, match="inside a frame"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_frame_is_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(ServeError, match="limit"):
                recv_message(b)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# job specs and keys


class TestJobIdentity:
    def test_validation_fills_defaults_and_rejects_junk(self):
        spec = validate_job(LINT_SPEC)
        assert spec == {"kind": "lint", "design": "fig1a", "rules": None,
                        "seed": 0}
        with pytest.raises(ServeError, match="unknown job kind"):
            validate_job({"kind": "meteor"})
        with pytest.raises(ServeError, match="unknown lint design"):
            validate_job({"kind": "lint", "design": "nope"})
        with pytest.raises(ServeError, match="unknown keys"):
            validate_job({"kind": "lint", "design": "fig1a", "cycles": 5})
        with pytest.raises(ServeError, match="spec must be an object"):
            validate_job("lint fig1a")

    def test_keys_are_deterministic_and_config_sensitive(self):
        base = job_key(validate_job(MEASURE_SPEC))
        assert base == job_key(validate_job(dict(MEASURE_SPEC)))
        assert base != job_key(validate_job(
            dict(MEASURE_SPEC, cycles=201)))
        assert base != job_key(validate_job(
            dict(MEASURE_SPEC, design="fig1d")))
        assert base != job_key(validate_job(MEASURE_SPEC), engine="batch")
        assert base != job_key(validate_job(dict(MEASURE_SPEC, seed=1)))

    def test_key_binds_the_built_design_not_just_its_name(self, monkeypatch):
        """Changing what a design name *builds* must change the key — a
        cached result can never be served for a redefined design."""
        import repro.designs as designs

        before = job_key(validate_job(LINT_SPEC))
        original = designs._DESIGN_FACTORIES["fig1a"]
        monkeypatch.setitem(designs._DESIGN_FACTORIES, "fig1a",
                            designs._DESIGN_FACTORIES["fig1d"])
        after = job_key(validate_job(LINT_SPEC))
        monkeypatch.setitem(designs._DESIGN_FACTORIES, "fig1a", original)
        assert before != after


# ---------------------------------------------------------------------------
# the result cache


class TestResultCache:
    def test_round_trip_and_hit_counting(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = job_key(validate_job(LINT_SPEC))
        assert cache.get(key) is None
        cache.put(key, {"ok": True})
        assert cache.get(key) == {"ok": True}
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "corrupt_evictions": 0}

    @pytest.mark.parametrize("mode", ["flip", "truncate", "garbage"])
    def test_corruption_is_evicted_never_served(self, tmp_path, mode):
        cache = ResultCache(str(tmp_path))
        cache.put("k" * 64, {"payload": list(range(100))})
        corrupt_checkpoint(cache.path("k" * 64), mode=mode)
        assert cache.get("k" * 64) is None
        assert cache.corrupt_evictions == 1
        assert not os.path.exists(cache.path("k" * 64))
        # recompute-and-overwrite works after the eviction
        cache.put("k" * 64, {"payload": [1]})
        assert cache.get("k" * 64) == {"payload": [1]}

    def test_foreign_key_entry_is_refused(self, tmp_path):
        """A file renamed onto another key's path fails the key check."""
        cache = ResultCache(str(tmp_path))
        cache.put("a" * 64, {"from": "a"})
        os.replace(cache.path("a" * 64), cache.path("b" * 64))
        assert cache.get("b" * 64) is None
        assert cache.corrupt_evictions == 1

    def test_lru_eviction_is_size_bounded_and_recency_driven(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=3)
        for i in range(3):
            cache.put(f"{i}" * 64, {"i": i})
        cache.get("0" * 64)                     # refresh 0: now 1 is LRU
        cache.put("3" * 64, {"i": 3})
        assert cache.get("1" * 64) is None      # evicted
        assert cache.get("0" * 64) == {"i": 0}  # survived (recently used)
        assert cache.get("3" * 64) == {"i": 3}
        assert cache.evictions == 1


# ---------------------------------------------------------------------------
# the job journal


class TestJobJournal:
    def test_round_trip_and_pending_order(self, tmp_path):
        path = str(tmp_path / "journal.ckpt")
        journal = JobJournal(path).load()
        journal.append("submitted", "1", key="k1", spec={"kind": "lint"})
        journal.append("submitted", "2", key="k2", spec={"kind": "sweep"})
        journal.append("done", "1", key="k1")
        reloaded = JobJournal(path).load()
        assert reloaded.pending() == [("2", "k2", {"kind": "sweep"})]
        assert reloaded.max_job_id() == 2

    def test_corrupt_journal_is_loud(self, tmp_path):
        path = str(tmp_path / "journal.ckpt")
        journal = JobJournal(path)
        journal.append("submitted", "1", key="k", spec={})
        corrupt_checkpoint(path, mode="flip")
        with pytest.raises(CheckpointError):
            JobJournal(path).load()

    def test_injected_append_failure_changes_nothing(self, tmp_path):
        """``serve_journal`` faults fire before any mutation: the record
        list and the on-disk file both stay as if the append never
        happened."""
        from repro.runtime.faults import InjectedFault, plan_scope

        path = str(tmp_path / "journal.ckpt")
        journal = JobJournal(path)
        journal.append("submitted", "1", key="k", spec={})
        with plan_scope(FaultPlan([Fault("serve_journal", "done")])):
            with pytest.raises(InjectedFault):
                journal.append("done", "1", key="k")
        assert [r["event"] for r in journal.records] == ["submitted"]
        assert [r["event"] for r in JobJournal(path).load().records] \
            == ["submitted"]


# ---------------------------------------------------------------------------
# server behaviour (in-thread)


class TestServerBasics:
    def test_result_then_cache_hit_byte_identical(self, tmp_path):
        with running_server(tmp_path) as (server, client):
            first = client.submit(LINT_SPEC)
            second = client.submit(LINT_SPEC)
            assert first["type"] == second["type"] == "result"
            assert not first.get("cached") and second["cached"]
            assert canonical(first["payload"]) == canonical(second["payload"])
            assert server.cache.stats()["hits"] == 1
            # --fresh bypasses the cache but recomputes identically
            third = client.submit(LINT_SPEC, fresh=True)
            assert not third.get("cached")
            assert canonical(third["payload"]) == canonical(first["payload"])

    def test_sweep_job_streams_progress(self, tmp_path):
        events = []
        with running_server(tmp_path) as (_server, client):
            terminal = client.submit(SWEEP_SPEC, on_event=events.append)
        assert terminal["type"] == "result"
        assert terminal["payload"]["n_configs"] == 24
        types = {event["type"] for event in events}
        assert "accepted" in types and "progress" in types

    def test_malformed_spec_is_a_structured_error(self, tmp_path):
        with running_server(tmp_path) as (_server, client):
            with pytest.raises(ServeError, match="unknown job kind"):
                client.submit({"kind": "meteor"})
            # the server survives the bad request
            assert client.status()["type"] == "status"

    def test_unknown_op_and_unknown_cancel_are_structured(self, tmp_path):
        with running_server(tmp_path) as (_server, client):
            with pytest.raises(ServeError, match="unknown op"):
                client._simple({"op": "launch"})
            with pytest.raises(ServeError, match="unknown job"):
                client.cancel("999")


class TestAdmissionControl:
    def test_queue_full_is_structured_backpressure(self, tmp_path):
        plan = FaultPlan([Fault("serve_execute", "lint", kind="slow",
                                seconds=3.0, times=99)])
        with running_server(tmp_path, max_queue=1, retries=0,
                            fault_plan=plan) as (server, client):
            background = threading.Thread(
                target=lambda: client.submit(LINT_SPEC), daemon=True)
            background.start()
            deadline = time.monotonic() + 5
            while server.depth < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(JobRejected) as info:
                client.submit(MEASURE_SPEC)
            assert info.value.queue_depth == 1
            assert info.value.max_queue == 1
            background.join(10)
            assert not background.is_alive()

    def test_injected_admission_fault_is_structured(self, tmp_path):
        plan = FaultPlan([Fault("serve_admit", "lint", kind="raise")])
        with running_server(tmp_path, fault_plan=plan) as (_server, client):
            with pytest.raises(ServeError, match="injected"):
                client.submit(LINT_SPEC)
            # containment: only the faulted admission key is affected, and
            # the server keeps serving
            assert client.submit(MEASURE_SPEC)["type"] == "result"

    def test_draining_server_rejects_new_jobs(self, tmp_path):
        with running_server(tmp_path) as (server, client):
            client.shutdown()
            deadline = time.monotonic() + 5
            while not server.draining and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises((JobRejected, ServeError)):
                client.submit(LINT_SPEC)


class TestDeadlinesAndCancellation:
    def test_deadline_stops_at_checkpoint_boundary(self, tmp_path):
        with running_server(tmp_path) as (_server, client):
            terminal = client.submit({"kind": "sweep", "grid": "fig6"},
                                     deadline=0.3)
            assert terminal["type"] == "cancelled"
            assert terminal["reason"] == "deadline exceeded"

    def test_client_cancels_a_queued_job(self, tmp_path):
        # the running lint job blocks the (serial) worker long enough that
        # the measure job is still queued when the cancel lands
        plan = FaultPlan([Fault("serve_execute", "lint", kind="slow",
                                seconds=4.0, times=99)])
        with running_server(tmp_path, max_queue=4, retries=0,
                            fault_plan=plan) as (server, client):
            def submit_blocker():
                with contextlib.suppress(ServeError):
                    client.submit(LINT_SPEC)

            blocker = threading.Thread(target=submit_blocker, daemon=True)
            blocker.start()
            # make the ordering deterministic: only submit the job to be
            # cancelled once the blocker occupies the worker
            deadline = time.monotonic() + 10
            while server.running is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.running is not None, "blocker job never started"
            accepted = {}
            terminal_box = {}

            def submit_queued():
                terminal_box["event"] = client.submit(
                    MEASURE_SPEC, fresh=True,
                    on_event=lambda e: accepted.update(e)
                    if e["type"] == "accepted" else None)

            queued = threading.Thread(target=submit_queued, daemon=True)
            queued.start()
            deadline = time.monotonic() + 5
            while "job" not in accepted and time.monotonic() < deadline:
                time.sleep(0.01)
            client.cancel(accepted["job"], reason="changed my mind")
            queued.join(20)
            assert not queued.is_alive()
            assert terminal_box["event"]["type"] == "cancelled"
            assert terminal_box["event"]["reason"] == "changed my mind"
            blocker.join(20)
            assert not blocker.is_alive()


class TestExecutionFaults:
    def test_retried_fault_recovers_byte_identically(self, tmp_path):
        clean = run_job(validate_job(LINT_SPEC))
        events = []
        plan = FaultPlan([Fault("serve_execute", "lint", kind="raise",
                                times=1)])
        with running_server(tmp_path, retries=1,
                            fault_plan=plan) as (_server, client):
            terminal = client.submit(LINT_SPEC, on_event=events.append)
        assert terminal["type"] == "result"
        assert terminal["attempts"] == 2
        assert canonical(terminal["payload"]) == canonical(clean)
        assert [e["type"] for e in events if e["type"] == "retry"] == ["retry"]

    @pytest.mark.parametrize("kind", ["crash", "hang"])
    def test_crash_and_hang_degrade_and_retry(self, tmp_path, kind):
        """In-process ``crash``/``hang`` faults degrade to raises (the
        PR 6 contract); the server retries and recovers."""
        plan = FaultPlan([Fault("serve_execute", "lint", kind=kind,
                                times=1)])
        with running_server(tmp_path, retries=1,
                            fault_plan=plan) as (_server, client):
            terminal = client.submit(LINT_SPEC)
        assert terminal["type"] == "result"
        assert terminal["attempts"] == 2

    def test_poison_job_is_quarantined(self, tmp_path):
        plan = FaultPlan([Fault("serve_execute", "lint", kind="raise",
                                times=99)])
        with running_server(tmp_path, retries=1,
                            fault_plan=plan) as (_server, client):
            terminal = client.submit(LINT_SPEC)
            assert terminal["type"] == "failed"
            assert terminal["attempts"] == 2
            assert "injected" in terminal["error"]
            # other jobs are unaffected
            assert client.submit(MEASURE_SPEC)["type"] == "result"
        # quarantine: the journal records the failure, so a restarted
        # server does NOT resurrect the poison job
        journal = JobJournal(str(tmp_path / "journal.ckpt")).load()
        assert journal.pending() == []
        events = [r["event"] for r in journal.records]
        assert "failed" in events

    def test_cache_write_fault_degrades_to_uncached_reply(self, tmp_path):
        plan = FaultPlan([Fault("serve_cache", kind="raise", times=99)])
        clean = run_job(validate_job(LINT_SPEC))
        with running_server(tmp_path, retries=0,
                            fault_plan=plan) as (server, client):
            first = client.submit(LINT_SPEC)
            assert first["type"] == "result"
            assert "injected" in first["cache_error"]
            assert canonical(first["payload"]) == canonical(clean)
            # nothing was cached; the repeat recomputes, still correctly
            second = client.submit(LINT_SPEC)
            assert not second.get("cached")
            assert canonical(second["payload"]) == canonical(clean)
            assert server.cache.stats()["hits"] == 0

    def test_journal_submit_fault_rejects_job(self, tmp_path):
        plan = FaultPlan([Fault("serve_journal", "submitted", kind="raise")])
        with running_server(tmp_path, fault_plan=plan) as (server, client):
            with pytest.raises(JobRejected, match="journal write failed"):
                client.submit(LINT_SPEC)
            # the acceptance never became durable: nothing queued, nothing
            # journaled, and the server keeps answering
            assert server.depth == 0
            assert JobJournal(
                str(tmp_path / "journal.ckpt")).load().records == []
            assert client.status()["type"] == "status"

    def test_journal_terminal_fault_still_delivers_result(self, tmp_path):
        plan = FaultPlan([Fault("serve_journal", "done", kind="raise",
                                times=99)])
        with running_server(tmp_path, fault_plan=plan) as (_server, client):
            terminal = client.submit(LINT_SPEC)
            assert terminal["type"] == "result"
            assert "journal write failed" in terminal["journal_error"]


class TestCacheIntegrity:
    def test_corrupted_cache_entry_recomputes_never_serves(self, tmp_path):
        with running_server(tmp_path) as (server, client):
            first = client.submit(LINT_SPEC)
            key = first["key"]
            corrupt_checkpoint(server.cache.path(key), mode="flip")
            second = client.submit(LINT_SPEC)
            assert second["type"] == "result"
            assert not second.get("cached")     # recomputed, not served
            assert canonical(second["payload"]) == canonical(first["payload"])
            assert server.cache.corrupt_evictions == 1
            # the rewritten entry is valid again
            third = client.submit(LINT_SPEC)
            assert third["cached"]


# ---------------------------------------------------------------------------
# drain / restart / resume


class TestDrainAndResume:
    def test_drain_detaches_queue_and_restart_finishes_it(self, tmp_path):
        """Kill-free version of the SIGKILL story: drain a server mid-
        sweep, restart on the same root, and the finished result must be
        byte-identical to an uninterrupted reference run."""
        reference = run_job(validate_job(LONG_SWEEP_SPEC))
        terminal_box = {}
        with running_server(tmp_path, retries=0) as (server, client):
            background = threading.Thread(
                target=lambda: terminal_box.update(
                    client.submit(LONG_SWEEP_SPEC)),
                daemon=True)
            background.start()
            deadline = time.monotonic() + 10
            while server.running is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.running is not None, "sweep never started"
            client.shutdown()
            background.join(15)
            assert not background.is_alive()
        assert terminal_box["type"] == "detached"
        # the job is still journaled pending, with a progress checkpoint
        journal = JobJournal(str(tmp_path / "journal.ckpt")).load()
        assert len(journal.pending()) == 1
        # a fresh server on the same root finishes it from the checkpoint
        with running_server(tmp_path, retries=0) as (server, client):
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                journal = JobJournal(str(tmp_path / "journal.ckpt")).load()
                if not journal.pending():
                    break
                time.sleep(0.05)
            assert not journal.pending(), "restart did not finish the job"
            final = client.submit(LONG_SWEEP_SPEC)
            assert final["cached"]
            assert canonical(final["payload"]) == canonical(reference)

    def test_startup_reenqueues_journaled_pending_jobs(self, tmp_path):
        """A journal with an accepted-but-unfinished job (what a SIGKILL
        leaves behind) is enough: the next server runs it to completion
        unprompted."""
        spec = validate_job(LINT_SPEC)
        key = job_key(spec)
        journal = JobJournal(str(tmp_path / "journal.ckpt"))
        journal.append("submitted", "7", key=key, spec=spec)
        reference = run_job(spec)
        with running_server(tmp_path) as (server, client):
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if JobJournal(str(tmp_path / "journal.ckpt")).load() \
                        .pending() == []:
                    break
                time.sleep(0.05)
            terminal = client.submit(LINT_SPEC)
            assert terminal["cached"]
            assert canonical(terminal["payload"]) == canonical(reference)

    def test_drain_fault_is_absorbed(self, tmp_path):
        plan = FaultPlan([Fault("serve_drain", kind="raise", times=99)])
        server_box = {}
        with running_server(tmp_path, fault_plan=plan) as (server, client):
            server_box["server"] = server
            assert client.submit(LINT_SPEC)["type"] == "result"
            client.shutdown()
        # the drain completed despite the injected fault, and recorded it
        assert any("injected" in err
                   for err in server_box["server"].drain_errors)


# ---------------------------------------------------------------------------
# subprocess cases: SIGKILL resume, SIGTERM parity


def _serve_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _spawn_server(root, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(root), *extra],
        env=_serve_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


@pytest.mark.slow
class TestSubprocessServer:
    def test_sigkill_midrun_restart_resumes_byte_identically(self, tmp_path):
        """The tentpole acceptance case: SIGKILL a real server process
        mid-sweep; a restarted server finishes the journaled job from its
        checkpoint and serves a result byte-identical to a clean run."""
        reference = run_job(validate_job(LONG_SWEEP_SPEC))
        proc = _spawn_server(tmp_path, "--retries", "0")
        try:
            wait_for_endpoint(str(tmp_path), timeout=30)
            client = ServeClient(root=str(tmp_path), timeout=60)

            def fire_and_forget():
                with contextlib.suppress(ServeError):
                    client.submit(LONG_SWEEP_SPEC)

            background = threading.Thread(target=fire_and_forget,
                                          daemon=True)
            background.start()
            # let the sweep get properly under way, then SIGKILL
            deadline = time.monotonic() + 10
            started = False
            journal_path = str(tmp_path / "journal.ckpt")
            while time.monotonic() < deadline:
                try:
                    if JobJournal(journal_path).load().pending():
                        started = True
                        break
                except (CheckpointError, OSError):
                    pass
                time.sleep(0.02)
            assert started, "job never reached the journal"
            time.sleep(0.3)
            proc.kill()
            proc.wait(10)
            background.join(10)
        finally:
            if proc.poll() is None:
                proc.kill()
        # restart: the pending job must complete without any client
        proc = _spawn_server(tmp_path, "--retries", "0")
        try:
            wait_for_endpoint(str(tmp_path), timeout=30)
            client = ServeClient(root=str(tmp_path), timeout=60)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if not JobJournal(journal_path).load().pending():
                    break
                time.sleep(0.1)
            assert not JobJournal(journal_path).load().pending(), \
                "restarted server did not finish the journaled job"
            final = client.submit(LONG_SWEEP_SPEC)
            assert final["type"] == "result"
            assert final["cached"]
            assert canonical(final["payload"]) == canonical(reference)
            client.shutdown()
            assert proc.wait(30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_sigterm_drains_and_exits_143(self, tmp_path):
        proc = _spawn_server(tmp_path)
        try:
            wait_for_endpoint(str(tmp_path), timeout=30)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(30) == 143
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_sigint_drains_and_exits_130(self, tmp_path):
        proc = _spawn_server(tmp_path)
        try:
            wait_for_endpoint(str(tmp_path), timeout=30)
            proc.send_signal(signal.SIGINT)
            assert proc.wait(30) == 130
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_cli_submit_round_trip(self, tmp_path):
        proc = _spawn_server(tmp_path)
        try:
            wait_for_endpoint(str(tmp_path), timeout=30)
            out = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "lint",
                 "--root", str(tmp_path), "--design", "fig1a", "--json"],
                env=_serve_env(), capture_output=True, text=True, timeout=120)
            assert out.returncode == 0, out.stderr
            terminal = json.loads(out.stdout)
            assert terminal["type"] == "result"
            assert terminal["payload"]["ok"] is True
            shut = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "shutdown",
                 "--root", str(tmp_path)],
                env=_serve_env(), capture_output=True, text=True, timeout=60)
            assert shut.returncode == 0, shut.stderr
            assert proc.wait(30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
