"""Unit tests for SELF channel semantics and event resolution."""

import pytest

from repro.elastic.channel import Channel, ChannelState, CONSUMER, PRODUCER
from repro.errors import SignalConflictError


def resolved_channel(vp, sp, vm, sm, data=None):
    ch = Channel("c")
    ch.state.vp = vp
    ch.state.sp = sp
    ch.state.vm = vm
    ch.state.sm = sm
    ch.state.data = data
    return ch


class TestChannelState:
    def test_set_from_unknown(self):
        st = ChannelState()
        assert st.set("vp", True) is True
        assert st.vp is True

    def test_set_same_value_is_noop(self):
        st = ChannelState()
        st.set("vp", True)
        assert st.set("vp", True) is False

    def test_set_none_is_noop(self):
        st = ChannelState()
        assert st.set("vp", None) is False
        assert st.vp is None

    def test_conflicting_rewrite_raises(self):
        st = ChannelState()
        st.set("vp", True)
        with pytest.raises(SignalConflictError):
            st.set("vp", False)

    def test_resolved_requires_all_controls(self):
        st = ChannelState()
        st.set("vp", False)
        st.set("sp", False)
        st.set("vm", False)
        assert not st.resolved()
        st.set("sm", False)
        assert st.resolved()

    def test_unresolved_signals_named(self):
        st = ChannelState()
        st.set("vp", True)
        assert set(st.unresolved_signals()) == {"sp", "vm", "sm"}


class TestAttach:
    def test_double_producer_rejected(self):
        ch = Channel("c")
        ch.attach(PRODUCER, "a", "o")
        with pytest.raises(SignalConflictError):
            ch.attach(PRODUCER, "b", "o")

    def test_double_consumer_rejected(self):
        ch = Channel("c")
        ch.attach(CONSUMER, "a", "i")
        with pytest.raises(SignalConflictError):
            ch.attach(CONSUMER, "b", "i")

    def test_bad_role(self):
        with pytest.raises(ValueError):
            Channel("c").attach("sideways", "a", "p")


class TestEvents:
    def test_forward_transfer(self):
        ev = resolved_channel(True, False, False, False, data=7).events()
        assert ev.forward and not ev.cancel and not ev.backward
        assert ev.data == 7
        assert ev.token_left_producer
        assert not ev.anti_delivered

    def test_stalled_token_no_event(self):
        ev = resolved_channel(True, True, False, False).events()
        assert not (ev.forward or ev.cancel or ev.backward)
        assert not ev.token_left_producer

    def test_idle(self):
        ev = resolved_channel(False, False, False, False).events()
        assert not (ev.forward or ev.cancel or ev.backward)

    def test_cancellation(self):
        """Token and anti-token in the same channel annihilate; both sides
        see their item leave."""
        ev = resolved_channel(True, False, True, False, data=3).events()
        assert ev.cancel
        assert not ev.forward          # the consumer does NOT receive data
        assert ev.data is None
        assert ev.token_left_producer
        assert ev.anti_delivered

    def test_backward_transfer(self):
        ev = resolved_channel(False, False, True, False).events()
        assert ev.backward and ev.anti_delivered and not ev.cancel

    def test_stalled_anti_token(self):
        ev = resolved_channel(False, False, True, True).events()
        assert not ev.anti_delivered

    def test_unresolved_raises_at_event_time(self):
        ch = Channel("c")
        ch.state.vp = True
        with pytest.raises(ValueError):
            ch.events()
