"""k-way sharing: the Section 4.1 footnote generalization.

The speculation pipeline must work unchanged for multiplexors with more
than two inputs — k copies of the block shared behind a k-channel
scheduler — preserving transfer equivalence for any prediction strategy.
"""

import pytest

from repro.core.scheduler import (
    RepairScheduler,
    RoundRobinScheduler,
    StaticScheduler,
    ToggleScheduler,
)
from repro.core.speculation import speculate
from repro.netlist import patterns
from repro.sim.engine import Simulator
from repro.sim.stats import TransferLog


def stream(net, channel, cycles=250):
    log = TransferLog([channel])
    Simulator(net, observers=[log]).run(cycles)
    return log.values(channel)


def sel3(generation):
    return (0, 1, 2, 1, 0, 2, 2, 1)[generation % 8]


class TestThreeWaySpeculation:
    def test_pipeline_builds(self):
        net, _names = patterns.kway_loop(sel3, k=3)
        report = speculate(net, "mux", "F", ToggleScheduler(3))
        shared = net.nodes[report.shared]
        assert shared.n_channels == 3
        assert net.nodes["mux"].n_inputs == 3
        net.validate()

    @pytest.mark.parametrize("make_sched", [
        lambda: ToggleScheduler(3),
        lambda: RoundRobinScheduler(3),
        lambda: RepairScheduler(3),
        lambda: StaticScheduler(3, favourite=2),
    ])
    def test_transfer_equivalence_3way(self, make_sched):
        net_ref, names = patterns.kway_loop(sel3, k=3)
        net_spec, _names2 = patterns.kway_loop(sel3, k=3)
        speculate(net_spec, "mux", "F", make_sched())
        ref = stream(net_ref, names["ebin"], 300)
        spec = stream(net_spec, "mux_f", 300)
        n = min(len(ref), len(spec))
        assert n >= 30
        assert ref[:n] == spec[:n]

    def test_four_way_also_works(self):
        sel4 = lambda g: (g * 7) % 4    # noqa: E731
        net_ref, names = patterns.kway_loop(sel4, k=4)
        net_spec, _names2 = patterns.kway_loop(sel4, k=4)
        speculate(net_spec, "mux", "F", RoundRobinScheduler(4))
        ref = stream(net_ref, names["ebin"], 400)
        spec = stream(net_spec, "mux_f", 400)
        n = min(len(ref), len(spec))
        assert n >= 25
        assert ref[:n] == spec[:n]

    def test_throughput_with_accurate_static_prediction(self):
        """A stream always selecting channel 2 + a static channel-2
        scheduler runs at full throughput even 3-way."""
        net, _names = patterns.kway_loop(lambda g: 2, k=3)
        speculate(net, "mux", "F", StaticScheduler(3, favourite=2))
        sim = Simulator(net)
        sim.run(220)
        assert sim.stats.transfers["mux_f"] >= 200

    def test_kills_reach_all_unselected_channels(self):
        """Every firing must kill k-1 sibling tokens."""
        net, names = patterns.kway_loop(sel3, k=3)
        speculate(net, "mux", "F", ToggleScheduler(3))
        sim = Simulator(net)
        sim.run(120)
        fires = sim.stats.transfers["mux_f"]
        kills = sum(sim.stats.cancels[f"fin{b}"] for b in range(3))
        kills += sum(sim.stats.cancels[f"fin{b}__tail"] for b in range(3))
        assert kills == pytest.approx(2 * fires, abs=4)
