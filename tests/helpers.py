"""Shared test utilities: tiny harness netlists around single nodes."""

from __future__ import annotations

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import KillerSink, ListSource, Sink
from repro.netlist.graph import Netlist
from repro.sim.engine import Simulator
from repro.sim.stats import TransferLog


def single_node_net(node, in_values=None, stall_rate=0.0, seed=0, kill_rate=None):
    """source -> node -> sink around a 1-in/1-out node."""
    net = Netlist(f"harness_{node.name}")
    net.add(node)
    net.add(ListSource("src", list(in_values or [])))
    if kill_rate is None:
        net.add(Sink("snk", stall_rate=stall_rate, seed=seed))
    else:
        net.add(KillerSink("snk", kill_rate=kill_rate, stall_rate=stall_rate, seed=seed))
    net.connect("src.o", (node.name, node.in_ports[0]), name="in")
    net.connect((node.name, node.out_ports[0]), "snk.i", name="out")
    net.validate()
    return net


def run(net, cycles, observers=(), check_protocol=True):
    sim = Simulator(net, observers=list(observers), check_protocol=check_protocol)
    sim.run(cycles)
    return sim


def sink_values(net, name="snk"):
    return net.nodes[name].values


def eb_between(name="eb", init=(), capacity=2, **kwargs):
    return ElasticBuffer(name, init=init, capacity=capacity, **kwargs)


def transfers_on(net, cycles, channels):
    """Run and return the forward-transfer value streams of ``channels``."""
    log = TransferLog(channels)
    run(net, cycles, observers=[log])
    return {name: log.values(name) for name in channels}
