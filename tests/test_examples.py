"""Smoke tests: every example script must run to completion and print its
headline results."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=600):
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Table 1" in out
        assert "A - C - E F F" in " ".join(out.split())
        assert "(d) speculation" in out

    def test_branch_speculation(self):
        out = run_example("branch_speculation.py")
        assert "throughput" in out
        assert "oracle" in out

    def test_variable_latency_alu(self):
        out = run_example("variable_latency_alu.py")
        assert "effective cycle time improvement" in out
        assert "area overhead" in out

    def test_resilient_adder(self):
        out = run_example("resilient_adder.py")
        assert "SECDED" in out
        assert "recovery EB" in out

    def test_design_space_exploration(self, tmp_path):
        out = run_example("design_space_exploration.py", str(tmp_path))
        assert "after speculation recipe" in out
        assert "deadlocks: 0" in out
        assert (tmp_path / "speculative_loop.v").exists()
        assert (tmp_path / "speculative_loop.smv").exists()
        assert (tmp_path / "speculative_loop.dot").exists()

    def test_lint_designs(self):
        out = run_example("lint_designs.py")
        assert "clean" in out
        assert "E102" in out and "E103" in out and "E004" in out
        assert "undeclared reads caught" in out
        assert "lint walkthrough complete" in out

    @pytest.mark.slow
    def test_verification_walkthrough(self):
        out = run_example("verification_walkthrough.py", timeout=1200)
        assert "starvation-free" in out
        assert "STARVES" in out
