"""Back-end tests: Verilog, SMV and BLIF emission."""

import re

import pytest

from repro.backend.blif import parse_blif, to_blif
from repro.backend.smv import to_smv
from repro.backend.verilog import to_verilog
from repro.datapath.adders import adder_inputs, ripple_carry_adder
from repro.datapath.secded import Secded
from repro.netlist import patterns
from repro.netlist.varlat import variable_latency_speculative
from repro.tech.gates import GateNetlist


def balanced_modules(text):
    return len(re.findall(r"^\s*module\s", text, re.M)) == len(
        re.findall(r"^\s*endmodule", text, re.M)
    )


class TestVerilog:
    def test_fig1d_emits_all_primitives(self):
        net, _names = patterns.table1_design()
        text = to_verilog(net)
        for prim in ("self_eb", "self_fork", "self_join", "self_eemux",
                     "self_shared", "self_sched_toggle"):
            assert f"module {prim}" in text
        assert balanced_modules(text)

    def test_top_module_wires_every_channel(self):
        net, _names = patterns.table1_design()
        text = to_verilog(net, top_name="speculative_loop")
        assert "module speculative_loop" in text
        for channel in net.channels:
            assert f"{channel}_vp" in text

    def test_eb_chain_emission(self):
        net = patterns.eb_chain(3)
        text = to_verilog(net)
        assert text.count("self_eb #(.W(") == 3
        assert balanced_modules(text)

    def test_fig6b_emission(self):
        net, _names = variable_latency_speculative()
        text = to_verilog(net)
        assert "self_shared" in text
        assert "self_eemux" in text
        assert balanced_modules(text)

    def test_environment_nodes_become_comments(self):
        net = patterns.eb_chain(1)
        text = to_verilog(net)
        assert "environment node 'src'" in text
        assert "environment node 'snk'" in text


class TestSmv:
    def test_eb_chain_model(self):
        net = patterns.eb_chain(2)
        text = to_smv(net)
        assert "MODULE elastic_buffer" in text
        assert "MODULE main" in text
        assert text.count("elastic_buffer(") >= 3   # module + 2 instances

    def test_specs_present_for_internal_channels(self):
        net = patterns.eb_chain(3)
        text = to_smv(net)
        assert "LTLSPEC" in text
        assert "Retry+" in text

    def test_retry_exempt_channels_skipped(self):
        net, names = patterns.table1_design()
        exempt = {names["fout0"], names["fout1"]}
        text = to_smv(net, retry_exempt=exempt)
        assert f"({names['fout0']}_vp & {names['fout0']}_sp" not in text.replace("  ", " ")

    def test_shared_module_emitted(self):
        net, _names = patterns.table1_design()
        text = to_smv(net)
        assert "MODULE shared2" in text
        assert "_g : 0..1" in text

    def test_liveness_specs_optional(self):
        net = patterns.eb_chain(3)          # needs internal channels
        assert "G F" not in to_smv(net, liveness=False)
        assert "G F" in to_smv(net, liveness=True)


class TestBlif:
    def test_adder_roundtrip_evaluates_identically(self):
        net = ripple_carry_adder(4)
        text = to_blif(net)
        back = parse_blif(text)
        for a in (0, 3, 9, 15):
            for b in (0, 5, 15):
                vin = adder_inputs(a, b, 4)
                assert back.evaluate(vin) == net.evaluate(vin)

    def test_secded_encoder_blif_structure(self):
        net = Secded(16).encoder_gates()
        text = to_blif(net)
        assert text.startswith(".model secded_enc16")
        assert ".inputs d0" in text
        assert text.rstrip().endswith(".end")
        assert text.count(".names") == len(net.gates)

    def test_mux_gate_cubes(self):
        net = GateNetlist("m")
        s = net.add_input("s")
        a = net.add_input("a")
        b = net.add_input("b")
        net.add_gate("mux2", (s, a, b), "y")
        net.mark_output("y")
        back = parse_blif(to_blif(net))
        for s_v in (False, True):
            for a_v in (False, True):
                for b_v in (False, True):
                    vin = {"s": s_v, "a": a_v, "b": b_v}
                    assert back.evaluate(vin)["y"] == net.evaluate(vin)["y"]
