"""Unit tests for the correct-by-construction transformations."""

import pytest

from repro.core.scheduler import ToggleScheduler
from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.eemux import EarlyEvalMux
from repro.elastic.functional import Func
from repro.errors import TransformError
from repro.netlist.graph import Netlist
from repro.netlist.patterns import fig1a
from repro.transform.bubbles import insert_bubble, insert_zbl_buffer, remove_empty_buffer
from repro.transform.early_eval import convert_to_early_eval
from repro.transform.retiming import retime_backward, retime_forward
from repro.transform.shannon import make_lazy_mux, shannon_decompose
from repro.transform.sharing import share_blocks

from helpers import run, sink_values


def linear_net(values=(1, 2, 3)):
    net = Netlist("lin")
    net.add(ListSource("src", list(values)))
    net.add(ElasticBuffer("eb0"))
    net.add(Func("f", lambda x: x * 2, n_inputs=1))
    net.add(Sink("snk"))
    net.connect("src.o", "eb0.i", name="c0")
    net.connect("eb0.o", "f.i0", name="c1")
    net.connect("f.o", "snk.i", name="c2")
    net.validate()
    return net


class TestBubbles:
    def test_insert_preserves_stream(self):
        net = linear_net()
        insert_bubble(net, "c2")
        net.validate()
        run(net, 10)
        assert sink_values(net) == [2, 4, 6]

    def test_insert_keeps_channel_name(self):
        net = linear_net()
        _, eb = insert_bubble(net, "c1")
        assert "c1" in net.channels
        assert net.channels["c1"].consumer[0] == eb

    def test_remove_roundtrip(self):
        net = linear_net()
        _, eb = insert_bubble(net, "c2")
        remove_empty_buffer(net, eb)
        net.validate()
        run(net, 10)
        assert sink_values(net) == [2, 4, 6]

    def test_remove_nonempty_rejected(self):
        net2 = Netlist("n")
        net2.add(ListSource("s", []))
        net2.add(ElasticBuffer("ebt", init=[1]))
        net2.add(Sink("k"))
        net2.connect("s.o", "ebt.i", name="a")
        net2.connect("ebt.o", "k.i", name="b")
        with pytest.raises(TransformError):
            remove_empty_buffer(net2, "ebt")

    def test_zbl_insert_preserves_stream(self):
        net = linear_net()
        insert_zbl_buffer(net, "c2")
        run(net, 10)
        assert sink_values(net) == [2, 4, 6]


class TestRetiming:
    def test_forward_moves_tokens_through_function(self):
        net = Netlist("r")
        net.add(ListSource("src", [5]))
        net.add(ElasticBuffer("eb", init=[1, 2]))
        net.add(Func("f", lambda x: x + 10, n_inputs=1))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="a")
        net.connect("eb.o", "f.i0", name="b")
        net.connect("f.o", "snk.i", name="c")
        record = retime_forward(net, "f")
        new_eb = net.nodes[record.details["added"]]
        assert new_eb.contents() == [11, 12]
        run(net, 10)
        assert sink_values(net) == [11, 12, 15]

    def test_forward_requires_eb_producers(self):
        net = linear_net()
        # f's producer is eb0 -> ok; but a func fed by the source is not.
        net2 = Netlist("n")
        net2.add(ListSource("s", [1]))
        net2.add(Func("g", lambda x: x, n_inputs=1))
        net2.add(Sink("k"))
        net2.connect("s.o", "g.i0", name="a")
        net2.connect("g.o", "k.i", name="b")
        with pytest.raises(TransformError):
            retime_forward(net2, "g")

    def test_backward_moves_empty_eb_to_inputs(self):
        net = Netlist("r")
        net.add(ListSource("a", [1, 2]))
        net.add(ListSource("b", [10, 20]))
        net.add(Func("f", lambda x, y: x + y, n_inputs=2))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("a.o", "f.i0", name="ca")
        net.connect("b.o", "f.i1", name="cb")
        net.connect("f.o", "eb.i", name="cf")
        net.connect("eb.o", "snk.i", name="out")
        record = retime_backward(net, "eb")
        assert len(record.details["added"]) == 2
        net.validate()
        run(net, 10)
        assert sink_values(net) == [11, 22]

    def test_backward_rejects_token_holding_eb(self):
        net = Netlist("r")
        net.add(ListSource("a", []))
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(ElasticBuffer("eb", init=[1]))
        net.add(Sink("snk"))
        net.connect("a.o", "f.i0", name="ca")
        net.connect("f.o", "eb.i", name="cf")
        net.connect("eb.o", "snk.i", name="out")
        with pytest.raises(TransformError):
            retime_backward(net, "eb")


class TestShannon:
    def test_decomposition_structure(self):
        net, _names = fig1a(lambda g: 0)
        record = shannon_decompose(net, "mux", "F")
        copies = record.details["copies"]
        assert len(copies) == 2
        assert "F" not in net.nodes
        for copy in copies:
            assert net.nodes[copy].fn is not None
        net.validate()

    def test_requires_mux_feeding_func(self):
        net = linear_net()
        with pytest.raises(TransformError):
            shannon_decompose(net, "f", "f")

    def test_requires_single_input_func(self):
        net = Netlist("n")
        net.add(make_lazy_mux("mux", 2))
        net.add(ListSource("s", [0]))
        net.add(ListSource("a", [1]))
        net.add(ListSource("b", [2]))
        net.add(ListSource("x", [9]))
        net.add(Func("f2", lambda p, q: p, n_inputs=2))
        net.add(Sink("k"))
        net.connect("s.o", "mux.i0", name="cs")
        net.connect("a.o", "mux.i1", name="ca")
        net.connect("b.o", "mux.i2", name="cb")
        net.connect("mux.o", "f2.i0", name="cm")
        net.connect("x.o", "f2.i1", name="cx")
        net.connect("f2.o", "k.i", name="out")
        with pytest.raises(TransformError):
            shannon_decompose(net, "mux", "f2")


class TestEarlyEval:
    def test_conversion_swaps_node_type(self):
        net, _names = fig1a(lambda g: 0)
        convert_to_early_eval(net, "mux")
        assert isinstance(net.nodes["mux"], EarlyEvalMux)
        net.validate()

    def test_rejects_non_mux(self):
        net = linear_net()
        with pytest.raises(TransformError):
            convert_to_early_eval(net, "f")

    def test_rejects_double_conversion(self):
        net, _names = fig1a(lambda g: 0)
        convert_to_early_eval(net, "mux")
        with pytest.raises(TransformError):
            convert_to_early_eval(net, "mux")


class TestSharing:
    def test_share_two_identity_blocks(self):
        fn = lambda x: x + 1  # noqa: E731  (shared object identity matters)
        net = Netlist("s")
        net.add(ListSource("a", [1, 2]))
        net.add(ListSource("b", [10, 20]))
        net.add(Func("f0", fn, n_inputs=1))
        net.add(Func("f1", fn, n_inputs=1))
        net.add(Sink("k0"))
        net.add(Sink("k1"))
        net.connect("a.o", "f0.i0", name="ca")
        net.connect("b.o", "f1.i0", name="cb")
        net.connect("f0.o", "k0.i", name="o0")
        net.connect("f1.o", "k1.i", name="o1")
        record = share_blocks(net, ["f0", "f1"], ToggleScheduler(2))
        shared = net.nodes[record.details["shared"]]
        assert shared.n_channels == 2
        net.validate()
        # channel names survived the rewrite
        assert "ca" in net.channels and "o1" in net.channels

    def test_share_requires_same_fn(self):
        net = Netlist("s")
        net.add(ListSource("a", []))
        net.add(ListSource("b", []))
        net.add(Func("f0", lambda x: x, n_inputs=1))
        net.add(Func("f1", lambda x: x + 1, n_inputs=1))
        net.add(Sink("k0"))
        net.add(Sink("k1"))
        net.connect("a.o", "f0.i0", name="ca")
        net.connect("b.o", "f1.i0", name="cb")
        net.connect("f0.o", "k0.i", name="o0")
        net.connect("f1.o", "k1.i", name="o1")
        with pytest.raises(TransformError):
            share_blocks(net, ["f0", "f1"], ToggleScheduler(2))

    def test_share_scheduler_size_mismatch(self):
        fn = lambda x: x  # noqa: E731
        net = Netlist("s")
        net.add(ListSource("a", []))
        net.add(ListSource("b", []))
        net.add(Func("f0", fn, n_inputs=1))
        net.add(Func("f1", fn, n_inputs=1))
        net.add(Sink("k0"))
        net.add(Sink("k1"))
        net.connect("a.o", "f0.i0", name="ca")
        net.connect("b.o", "f1.i0", name="cb")
        net.connect("f0.o", "k0.i", name="o0")
        net.connect("f1.o", "k1.i", name="o1")
        with pytest.raises(TransformError):
            share_blocks(net, ["f0", "f1"], ToggleScheduler(3))
