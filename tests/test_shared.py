"""Unit tests for the shared elastic module (Figure 4) with schedulers."""

import pytest

from repro.core.scheduler import (
    PrimaryScheduler,
    RepairScheduler,
    StaticScheduler,
    ToggleScheduler,
)
from repro.core.shared import SharedModule
from repro.elastic.buffers import ElasticBuffer
from repro.elastic.eemux import EarlyEvalMux
from repro.elastic.environment import ListSource, Sink
from repro.netlist.graph import Netlist

from helpers import run


def shared_to_mux_net(sels, a_values, b_values, scheduler, fn=lambda x: x):
    """sources -> shared module -> early-eval mux -> sink, the Section 4.1
    structure (no intermediate buffers: Lf = Lb = 0)."""
    net = Netlist("t")
    net.add(SharedModule("sh", fn, scheduler, n_channels=2))
    net.add(EarlyEvalMux("mux", n_inputs=2))
    net.add(ListSource("a", list(a_values)))
    net.add(ListSource("b", list(b_values)))
    net.add(ListSource("sel", list(sels)))
    net.add(Sink("snk"))
    net.connect("a.o", "sh.i0", name="fin0")
    net.connect("b.o", "sh.i1", name="fin1")
    net.connect("sh.o0", "mux.i0", name="fout0")
    net.connect("sh.o1", "mux.i1", name="fout1")
    net.connect("sel.o", "mux.s", name="cs")
    net.connect("mux.o", "snk.i", name="out")
    net.validate()
    return net


class TestConstruction:
    def test_scheduler_channel_mismatch(self):
        with pytest.raises(ValueError):
            SharedModule("s", lambda x: x, ToggleScheduler(2), n_channels=3)

    def test_requires_scheduler_type(self):
        with pytest.raises(TypeError):
            SharedModule("s", lambda x: x, object(), n_channels=2)


class TestGranting:
    def test_predicted_channel_flows(self):
        net = shared_to_mux_net([0], [41], [], StaticScheduler(2, favourite=0))
        run(net, 5)
        assert net.nodes["snk"].values == [41]

    def test_function_applied(self):
        net = shared_to_mux_net([0], [20], [], StaticScheduler(2, favourite=0),
                                fn=lambda x: x + 1)
        run(net, 5)
        assert net.nodes["snk"].values == [21]

    def test_unpredicted_channel_stalled(self):
        """With the scheduler stuck on channel 0 and no repair, a token on
        channel 1 never passes even when selected."""
        net = shared_to_mux_net([1], [], [7],
                                StaticScheduler(2, favourite=0, repair=False))
        run(net, 10)
        assert net.nodes["snk"].values == []
        assert net.nodes["b"].emitted == 0


class TestMispredictionRepair:
    def test_repair_after_one_lost_cycle(self):
        """Misprediction costs exactly one cycle: the stalled output tells
        the scheduler to flip (the Table 1 mechanism)."""
        net = shared_to_mux_net([1, 1], [9, 9], [70, 71],
                                RepairScheduler(2, start=0))
        run(net, 12)
        assert net.nodes["snk"].values == [70, 71]

    def test_mispredict_counter(self):
        net = shared_to_mux_net([1], [5], [6], RepairScheduler(2, start=0))
        run(net, 8)
        shared = net.nodes["sh"]
        assert shared.mispredicts >= 1
        assert shared.grants >= 1

    def test_primary_scheduler_returns_to_primary(self):
        """PrimaryScheduler deviates for one replay, then goes back —
        the Section 5 replay behaviour."""
        sched = PrimaryScheduler(2, primary=0)
        net = shared_to_mux_net([0, 1, 0], [1, 2, 3], [50, 51, 52], sched)
        run(net, 15)
        values = net.nodes["snk"].values
        # generation-aligned early-eval semantics: each firing consumes one
        # token per side.
        assert values[0] == 1
        assert 51 in values or 50 in values
        assert sched.prediction() == 0


class TestAntiTokenPassThrough:
    def test_kill_rushes_through_shared_module(self):
        """A correct prediction's anti-token must cancel the token stalled
        at the *input* of the shared module in the same cycle (Lb = 0
        pass-through of Figure 4)."""
        net = shared_to_mux_net([0], [1], [99], StaticScheduler(2, favourite=0))
        sim = run(net, 6)
        assert net.nodes["snk"].values == [1]
        # b's token was emitted and destroyed without ever crossing the unit.
        assert net.nodes["b"].emitted == 1
        assert sim.stats.cancels["fin1"] == 1
        assert sim.stats.transfers["fout1"] == 0


class TestToggleFairness:
    def test_both_channels_served(self):
        net = shared_to_mux_net([0, 1, 0, 1], [1, 2, 3, 4], [11, 12, 13, 14],
                                ToggleScheduler(2))
        run(net, 30)
        values = net.nodes["snk"].values
        assert len(values) == 4
        assert any(v < 10 for v in values) and any(v > 10 for v in values)
