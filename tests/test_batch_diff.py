"""Differential testing of the lane-parallel batch engine.

Every lane of a :class:`BatchSimulator` must be *bit-identical* to running
that configuration in its own scalar (worklist) simulator: same per-channel
transfer streams (values and cycles), same full :class:`ChannelStats`, same
sink streams, same combinational-loop diagnostics, same protocol verdicts.
These tests fuzz random same-topology pipelines with per-lane parameter
variations (the lane-assignment fuzz the acceptance criteria require) and
compare lane by lane, plus the canned paper designs and the sweep backend.
"""

import random

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.functional import Func
from repro.errors import CombinationalLoopError, ProtocolViolationError
from repro.netlist import patterns
from repro.netlist.graph import Netlist
from repro.sim.batch import BatchSimulator, topology_signature
from repro.sim.engine import Simulator
from repro.sim.stats import TransferLog

from test_fuzz import build_pipeline

#: fuzzed netlist/lane-assignment combos (acceptance floor: 20).
N_FUZZ_COMBOS = 24


def _stats_dict(stats):
    return {
        "cycles": stats.cycles,
        "transfers": stats.transfers,
        "cancels": stats.cancels,
        "backwards": stats.backwards,
        "stalls": stats.stalls,
        "idles": stats.idles,
    }


def _scalar_reference(make_lane, n_lanes, cycles):
    reference = []
    for lane in range(n_lanes):
        net = make_lane(lane)
        log = TransferLog(list(net.channels))
        sim = Simulator(net, engine="worklist", observers=[log])
        sim.run(cycles)
        reference.append((
            _stats_dict(sim.stats),
            {name: log.streams[name] for name in net.channels},
            net.nodes["snk"].values if "snk" in net.nodes else None,
        ))
    return reference


def assert_lanes_identical(make_lane, n_lanes, cycles=250):
    """Run ``make_lane(lane)`` per lane scalar-ly and batched, and compare
    everything observable per lane."""
    reference = _scalar_reference(make_lane, n_lanes, cycles)
    nets = [make_lane(lane) for lane in range(n_lanes)]
    logs = [TransferLog(list(net.channels)) for net in nets]
    batch = BatchSimulator(nets, observers=[[log] for log in logs])
    batch.run(cycles)
    for lane in range(n_lanes):
        ref_stats, ref_streams, ref_sink = reference[lane]
        assert _stats_dict(batch.lane_stats(lane)) == ref_stats
        streams = {name: logs[lane].streams[name] for name in nets[lane].channels}
        assert streams == ref_streams
        if ref_sink is not None:
            assert nets[lane].nodes["snk"].values == ref_sink


def _fuzz_combo(seed):
    """One fuzzed topology plus per-lane parameter assignments."""
    rng = random.Random(seed)
    n_stages = rng.randint(1, 6)
    stages = [rng.choice(["eb", "zbl", "func"]) for _ in range(n_stages)]
    kill = rng.random() < 0.4
    n_lanes = rng.choice([1, 2, 3, 4, 5, 8, 11])
    lane_params = [
        (rng.choice([0.0, 0.2, 0.5, 0.8]),       # stall rate
         rng.randint(0, 1000),                   # sink seed
         rng.randint(15, 30))                    # source stream length
        for _ in range(n_lanes)
    ]
    return stages, kill, lane_params


class TestFuzzedLaneAssignments:
    @pytest.mark.parametrize("seed", range(N_FUZZ_COMBOS))
    def test_lanes_bit_identical(self, seed):
        stages, kill, lane_params = _fuzz_combo(seed)

        def make_lane(lane):
            stall, sink_seed, n_values = lane_params[lane]
            return build_pipeline(stages, stall, sink_seed,
                                  list(range(n_values)), kill=kill)

        assert_lanes_identical(make_lane, len(lane_params), cycles=250)


class TestChaosSaboteurLanes:
    """Chaos-wrapped lanes: same saboteur topology per lane (the batch
    engine requires it), per-lane injection seeds — every lane must match
    its own scalar run bit for bit through the saboteur batch kernels."""

    @pytest.mark.parametrize("seed", range(6))
    def test_wrapped_lanes_bit_identical(self, seed):
        from repro.chaos import ChaosFault, ChaosPlan, wrap

        rng = random.Random(seed)
        n_stages = rng.randint(1, 5)
        stages = [rng.choice(["eb", "zbl", "func"]) for _ in range(n_stages)]
        kill = rng.random() < 0.4
        channels = [f"c{i}" for i in range(n_stages)] + ["out"]
        picks = [(ch, rng.choice(["stall", "bubble", "corrupt"]))
                 for ch in channels if rng.random() < 0.6]
        if not picks:
            picks = [("out", "stall")]

        def make_lane(lane):
            net = build_pipeline(stages, 0.3, seed, list(range(20)),
                                 kill=kill)
            faults = tuple(
                ChaosFault(channel=ch, kind=kind, rate=0.3,
                           seed=seed * 31 + lane * 7 + j)
                for j, (ch, kind) in enumerate(picks))
            wrap(net, ChaosPlan(faults=faults, seed=seed))
            return net

        assert_lanes_identical(make_lane, n_lanes=4, cycles=300)


class TestPaperDesignLanes:
    def test_fig1d_lanes(self):
        def make_lane(lane):
            return patterns.fig1d(lambda g, m=lane + 1: (g // m) % 2)[0]

        assert_lanes_identical(make_lane, 4, cycles=200)

    @pytest.mark.parametrize("design", ["stalling", "speculative"])
    def test_fig6_lanes(self, design):
        from repro.perf.presets import fig6_point

        fracs = [0.0, 0.3, 0.6, 1.0, 0.45]

        def make_lane(lane):
            return fig6_point(design=design, seed=3,
                              arith_fraction=fracs[lane])[0]

        assert_lanes_identical(make_lane, len(fracs), cycles=250)


class TestLoopDiagnostics:
    def _loop_net(self):
        net = Netlist("loop")
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(Func("g", lambda x: x, n_inputs=1))
        net.connect("f.o", "g.i0", name="a")
        net.connect("g.o", "f.i0", name="b")
        return net

    def test_loop_error_identical_to_scalar(self):
        scalar = Simulator(self._loop_net(), engine="worklist")
        with pytest.raises(CombinationalLoopError) as scalar_err:
            scalar.step()
        batch = BatchSimulator([self._loop_net() for _ in range(3)])
        with pytest.raises(CombinationalLoopError) as batch_err:
            batch.step()
        assert sorted(batch_err.value.unresolved) == sorted(
            scalar_err.value.unresolved
        )
        assert batch_err.value.cycle == scalar_err.value.cycle
        # Every lane loops; the diagnosis names the lowest one.
        assert batch_err.value.lane == 0


class TestProtocolVerdicts:
    class WithdrawingSource(ElasticBuffer):
        """Deliberately broken: withdraws a stalled token after 2 cycles.

        Subclasses ElasticBuffer only to inherit wiring; comb is replaced
        by a protocol-violating offer, and batch_comb is disabled so the
        batch engine exercises the scalar fallback path on it too.
        """

        batch_comb = None

        def __init__(self, name):
            super().__init__(name, init=(1, 2))
            self._age = 0

        def comb(self):
            changed = self.drive("o", "vp", self._age < 2)
            if self._age < 2:
                changed |= self.drive("o", "data", 7)
            changed |= self.drive("o", "sm", False)
            changed |= self.drive("i", "sp", True)
            changed |= self.drive("i", "vm", False)
            return changed

        def tick(self):
            self._age += 1

    def _net(self):
        net = Netlist("broken")
        net.add(ListSource("src", []))
        net.add(self.WithdrawingSource("bad"))
        net.add(Sink("snk", stall_rate=1.0, seed=1))
        net.connect("src.o", "bad.i", name="in")
        net.connect("bad.o", "snk.i", name="out")
        return net

    def test_same_violation_as_scalar(self):
        scalar = Simulator(self._net(), engine="worklist")
        with pytest.raises(ProtocolViolationError) as scalar_err:
            scalar.run(10)
        batch = BatchSimulator([self._net() for _ in range(3)])
        with pytest.raises(ProtocolViolationError) as batch_err:
            batch.run(10)
        for attr in ("prop", "channel", "cycle"):
            assert getattr(batch_err.value, attr) == getattr(
                scalar_err.value, attr
            )
        assert str(batch_err.value) == str(scalar_err.value)
        assert batch_err.value.lane == 0


class TestBatchConstruction:
    def test_topology_mismatch_rejected(self):
        a = build_pipeline(["eb"], 0.0, 1, [1, 2])
        b = build_pipeline(["eb", "eb"], 0.0, 1, [1, 2])
        with pytest.raises(ValueError, match="topology"):
            BatchSimulator([a, b])

    def test_signature_ignores_sequential_parameters(self):
        def make(capacity, values):
            net = Netlist("p")
            net.add(ListSource("src", values))
            net.add(ElasticBuffer("eb", capacity=capacity))
            net.add(Sink("snk"))
            net.connect("src.o", "eb.i", name="in")
            net.connect("eb.o", "snk.i", name="out")
            return net

        assert topology_signature(make(2, [1])) == topology_signature(
            make(7, [5, 6])
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator([])

    def test_stale_batch_after_new_simulator(self):
        net = build_pipeline(["eb"], 0.0, 1, [1, 2, 3])
        batch = BatchSimulator([net])
        batch.step()
        Simulator(net, engine="worklist")
        with pytest.raises(RuntimeError, match="owned by a newer"):
            batch.step()


class TestSweepLaneBatching:
    def _spec(self):
        from repro.perf.presets import fig6_spec

        return fig6_spec(fracs=(0.0, 0.5, 1.0), windows=(3,), cycles=120,
                         warmup=40)

    def test_lanes_json_identical_to_one_lane_batch(self):
        from repro.perf.sweep import run_sweep

        one = run_sweep(self._spec(), engine="batch", lanes=1)
        # 6 configs over 4 lanes: two same-topology groups of 3, split 3+3.
        many = run_sweep(self._spec(), lanes=4)
        assert many.to_json() == one.to_json()
        assert many.lanes == 4

    def test_lanes_rows_match_scalar_except_engine(self):
        from repro.perf.sweep import run_sweep

        scalar = run_sweep(self._spec(), engine="worklist")
        batched = run_sweep(self._spec(), lanes=8)
        for scalar_row, batched_row in zip(scalar.rows, batched.rows):
            assert batched_row["engine"] == "batch"
            trimmed = dict(scalar_row, engine="batch")
            assert trimmed == batched_row

    def test_lanes_conflicting_engine_rejected(self):
        from repro.perf.sweep import run_sweep

        with pytest.raises(ValueError, match="batch"):
            run_sweep(self._spec(), engine="naive", lanes=2)

    def test_bad_lane_count_rejected(self):
        from repro.perf.sweep import run_sweep

        with pytest.raises(ValueError, match="lanes"):
            run_sweep(self._spec(), lanes=0)


class TestLaneCountEdgeCases:
    def _make_lane(self, lane):
        return build_pipeline(["eb", "func", "zbl"], 0.3, lane + 5,
                              list(range(18)), kill=False)

    def test_single_lane(self):
        assert_lanes_identical(self._make_lane, 1, cycles=150)

    @pytest.mark.parametrize("n_lanes", [3, 5, 7])
    def test_non_power_of_two_lanes(self, n_lanes):
        assert_lanes_identical(self._make_lane, n_lanes, cycles=150)

    def test_more_configs_than_lanes_in_sweep(self):
        """8 same-topology configurations over 3 lanes: the sweep backend
        splits the group into 3+3+2 batch runs with identical results."""
        from repro.perf.presets import fig6_lane_spec
        from repro.perf.sweep import run_sweep

        spec = fig6_lane_spec(cycles=100, warmup=30)
        three = run_sweep(spec, lanes=3)
        eight = run_sweep(spec, lanes=8)
        assert len(three.rows) == 8
        assert three.to_json() == eight.to_json()


class TestObserverValidation:
    def test_observer_count_must_match_lanes(self):
        net = build_pipeline(["eb"], 0.0, 1, [1, 2])
        with pytest.raises(ValueError, match="observers"):
            BatchSimulator([net], observers=[[], []])


class TestPerLaneOwnership:
    def test_stale_batch_detects_takeover_of_any_lane(self):
        """A newer simulator claiming a lane other than lane 0 must also
        trip the batch ownership guard."""
        nets = [build_pipeline(["eb"], 0.0, s, [1, 2, 3]) for s in (1, 2, 3)]
        batch = BatchSimulator(nets)
        batch.step()
        Simulator(nets[2], engine="worklist")
        with pytest.raises(RuntimeError, match="owned by a newer"):
            batch.step()


class TestKernelAuthorHelpers:
    """The documented kernel-author API on BatchChannelState/BatchNodeCtx."""

    def test_lane_value_matches_scattered_state(self):
        nets = [build_pipeline(["eb"], 0.0, s, [10, 20, 30]) for s in (1, 2)]
        batch = BatchSimulator(nets)
        batch.step()
        bst = batch._bst_by_name["out"]
        for lane, net in enumerate(nets):
            st = net.channels["out"].state
            assert bst.lane_value("vp", lane) == st.vp
            assert bst.lane_value("sp", lane) == st.sp
            assert bst.lane_value("data", lane) == st.data

    def test_lane_value_unknown_is_none(self):
        from repro.elastic.channel import BatchChannelState

        bst = BatchChannelState(3, name="c")
        assert bst.lane_value("vp", 1) is None
        bst.set_mask("vp", 0b010, 0b010)
        assert bst.lane_value("vp", 1) is True
        assert bst.lane_value("vp", 0) is None

    def test_ctx_lane_mask(self):
        from repro.sim.batch import BatchNodeCtx

        class Probe:
            def __init__(self, flag):
                self.flag = flag

        ctx = BatchNodeCtx((Probe(True), Probe(False), Probe(True)), {}, 0b111)
        assert ctx.lane_mask(lambda node: node.flag) == 0b101


class TestLiveStatsContract:
    def test_wrapper_stats_reference_stays_live(self):
        """A stats reference held across step() reads current counts —
        same contract as the scalar engines."""
        net = build_pipeline(["eb"], 0.0, 1, [1, 2, 3])
        sim = Simulator(net, engine="batch")
        stats = sim.stats
        assert stats is sim.stats
        assert stats.transfers["out"] == 0
        sim.run(10)
        assert stats.transfers["out"] == 3
        assert stats.cycles == 10
        assert stats.summary()[0]["channel"] in net.channels


class TestFallbackMidFixpointEvents:
    class ProbingSink(Sink):
        """Fallback-path sink whose comb consults another channel's
        events() mid-fix-point (legal, must raise on unresolved)."""

        batch_comb = None

        def __init__(self, name, watch):
            super().__init__(name)
            self.watch = watch
            self.observations = []

        def comb(self):
            try:
                self.watch[0].events()
                self.observations.append("resolved")
            except ValueError:
                self.observations.append("unresolved")
            return super().comb()

    def _net(self, watch):
        net = Netlist("probe")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(self.ProbingSink("snk", watch))
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        return net

    def _first_observation(self, engine_run):
        watch = []
        net = self._net(watch)
        watch.append(net.channels["out"])
        engine_run(net)
        return net.nodes["snk"].observations[0]

    def test_batch_fallback_matches_scalar_raise(self):
        """The sink is seeded before the buffer (no dependency edge), so
        out.vp is unknown at its first evaluation — both engines must see
        the unresolved ValueError, not stale previous-cycle events."""
        scalar = self._first_observation(
            lambda net: Simulator(net, engine="worklist").run(3)
        )
        batched = self._first_observation(
            lambda net: BatchSimulator([net]).run(3)
        )
        assert scalar == "unresolved"
        assert batched == scalar
