"""Tests for the scripted exploration session (the Section 5 toolkit)."""

import pytest

from repro.errors import TransformError
from repro.netlist import patterns
from repro.sim.engine import Simulator
from repro.sim.stats import TransferLog
from repro.transform.session import Session


def fig1a_session():
    net, names = patterns.fig1a(lambda g: g % 2)
    return Session(net), names


def stream(net, channel, cycles=150):
    log = TransferLog([channel])
    Simulator(net, observers=[log]).run(cycles)
    return log.values(channel)


class TestUndoRedo:
    def test_undo_restores_structure(self):
        session, _names = fig1a_session()
        before = set(session.netlist.nodes)
        session.insert_bubble("mux_f")
        assert set(session.netlist.nodes) != before
        session.undo()
        assert set(session.netlist.nodes) == before

    def test_redo_reapplies(self):
        session, _names = fig1a_session()
        session.insert_bubble("mux_f")
        after = set(session.netlist.nodes)
        session.undo()
        session.redo()
        assert set(session.netlist.nodes) == after

    def test_undo_empty_raises(self):
        session, _names = fig1a_session()
        with pytest.raises(TransformError):
            session.undo()

    def test_new_transform_clears_redo(self):
        session, _names = fig1a_session()
        session.insert_bubble("mux_f")
        session.undo()
        session.insert_zbl("mux_f")
        with pytest.raises(TransformError):
            session.redo()

    def test_failed_transform_leaves_netlist_intact(self):
        session, _names = fig1a_session()
        nodes_before = set(session.netlist.nodes)
        with pytest.raises(TransformError):
            session.shannon("F", "mux")        # arguments swapped: invalid
        assert set(session.netlist.nodes) == nodes_before

    def test_invalid_result_rolls_back_mutations(self):
        """Regression (ISSUE 4): a transform that mutates and only *then*
        turns out invalid must be rolled back — validation runs inside the
        rollback scope, so the session never keeps a corrupted netlist."""
        from repro.errors import NetlistError

        session, _names = fig1a_session()
        nodes_before = set(session.netlist.nodes)
        channels_before = set(session.netlist.channels)

        def bad_transform(netlist):
            # mutate successfully, but leave dangling ports behind
            netlist.disconnect("mux_f")

        with pytest.raises(NetlistError):
            session._apply("bad_transform", bad_transform)
        assert set(session.netlist.nodes) == nodes_before
        assert set(session.netlist.channels) == channels_before
        session.netlist.validate()
        assert session.log == [] and session._undo == []
        # the session keeps working normally afterwards
        session.insert_bubble("mux_f")
        session.undo()

    def test_undo_keeps_netlist_object_identity(self):
        """Edit-log history patches in place: ``session.netlist`` stays the
        same object across transform/undo/redo (what keeps a warm
        edit-following simulator attached)."""
        session, _names = fig1a_session()
        net = session.netlist
        session.insert_bubble("mux_f")
        session.undo()
        session.redo()
        assert session.netlist is net

    def test_original_netlist_untouched(self):
        net, _names = patterns.fig1a(lambda g: 0)
        session = Session(net)
        session.insert_bubble("mux_f")
        assert "bub_mux_f" not in net.nodes


class TestCommandScripts:
    def test_full_speculation_script(self):
        """The paper's workflow as a command script: Shannon, early
        evaluation, sharing — ending with a working speculative design."""
        session, names = fig1a_session()
        session.run_script(
            """
            # Section 4 recipe
            shannon mux F
            early_eval mux
            share F_c0 F_c1 --scheduler=toggle
            """
        )
        kinds = {node.kind for node in session.netlist.nodes.values()}
        assert "shared" in kinds and "eemux" in kinds
        # after Shannon the EB is fed by the mux-output channel directly
        values = stream(session.netlist, "mux_f", 200)
        reference, _ = patterns.fig1a(lambda g: g % 2)
        ref_values = stream(reference, names["ebin"], 200)
        n = min(len(values), len(ref_values))
        assert n > 20 and values[:n] == ref_values[:n]

    def test_bubble_and_undo_script(self):
        session, _names = fig1a_session()
        session.run_script("insert_bubble mux_f\nundo")
        assert all(node.kind != "eb" or node.name == "eb"
                   for node in session.netlist.nodes.values())

    def test_unknown_command_rejected(self):
        session, _names = fig1a_session()
        with pytest.raises(TransformError):
            session.run_command("frobnicate x")

    def test_unknown_scheduler_rejected(self):
        session, _names = fig1a_session()
        session.run_command("shannon mux F")
        with pytest.raises(TransformError):
            session.run_command("share F_c0 F_c1 --scheduler=psychic")

    def test_custom_scheduler_factory(self):
        from repro.core.scheduler import OracleScheduler

        session, _names = fig1a_session()
        session.run_command("shannon mux F")
        session.run_command(
            "share F_c0 F_c1 --scheduler=oracle",
            schedulers={"oracle": lambda n: OracleScheduler(lambda k: 0, n)},
        )
        assert session.netlist.nodes_of_kind("shared")

    def test_log_records_history(self):
        session, _names = fig1a_session()
        session.run_script("insert_bubble mux_f\nundo")
        assert session.log[0].startswith("insert_bubble")
        assert session.log[-1].startswith("undo")


class TestReporting:
    def test_dot_export(self):
        session, _names = fig1a_session()
        assert "digraph" in session.to_dot()

    def test_perf_report(self):
        session, _names = fig1a_session()
        report = session.report()
        assert report.cycle_time > 0
        assert report.area > 0
