"""Unit tests for the netlist container (construction, validation, editing)."""

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.functional import Func, identity_block
from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.netlist.dot import to_dot


def small_net():
    net = Netlist("n")
    net.add(ListSource("src", [1]))
    net.add(ElasticBuffer("eb"))
    net.add(Sink("snk"))
    net.connect("src.o", "eb.i", name="a")
    net.connect("eb.o", "snk.i", name="b")
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = Netlist("n")
        net.add(ElasticBuffer("eb"))
        with pytest.raises(NetlistError):
            net.add(ElasticBuffer("eb"))

    def test_non_node_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("n").add("not a node")

    def test_connect_infers_single_port(self):
        net = Netlist("n")
        net.add(ListSource("src", []))
        net.add(Sink("snk"))
        ch = net.connect("src", "snk", name="c")
        assert ch.producer == ("src", "o")
        assert ch.consumer == ("snk", "i")

    def test_connect_ambiguous_port_rejected(self):
        from repro.elastic.fork import EagerFork

        net = Netlist("n")
        net.add(ListSource("src", []))
        net.add(EagerFork("fork", n_outputs=2))
        net.add(Sink("a"))
        net.connect("src", "fork.i", name="c0")
        with pytest.raises(NetlistError):
            net.connect("fork", "a", name="c1")   # two free outputs

    def test_double_connect_rejected(self):
        net = small_net()
        net.add(Sink("snk2"))
        with pytest.raises(NetlistError):
            net.connect("eb.o", "snk2.i", name="c")

    def test_duplicate_channel_name_rejected(self):
        net = Netlist("n")
        net.add(ListSource("s1", []))
        net.add(ListSource("s2", []))
        net.add(Sink("k1"))
        net.add(Sink("k2"))
        net.connect("s1", "k1", name="same")
        with pytest.raises(NetlistError):
            net.connect("s2", "k2", name="same")

    def test_unknown_node_rejected(self):
        net = Netlist("n")
        with pytest.raises(NetlistError):
            net.connect("ghost.o", "ghost.i")


class TestValidation:
    def test_valid_design_passes(self):
        assert small_net().validate()

    def test_dangling_port_detected(self):
        net = Netlist("n")
        net.add(ElasticBuffer("eb"))
        with pytest.raises(NetlistError, match="dangling"):
            net.validate()


class TestEditing:
    def test_disconnect_returns_endpoints(self):
        net = small_net()
        src, dst = net.disconnect("a")
        assert src == ("src", "o")
        assert dst == ("eb", "i")
        assert "a" not in net.channels

    def test_remove_requires_disconnection(self):
        net = small_net()
        with pytest.raises(NetlistError):
            net.remove("eb")
        net.disconnect("a")
        net.disconnect("b")
        net.remove("eb")
        assert "eb" not in net.nodes

    def test_fresh_name_avoids_collisions(self):
        net = small_net()
        assert net.fresh_name("eb") == "eb_1"
        assert net.fresh_name("new") == "new"


class TestCloneAndState:
    def test_clone_is_independent(self):
        net = small_net()
        other = net.clone()
        other.nodes["eb"]._wr += 1
        assert net.nodes["eb"].count == 0
        assert other.nodes["eb"].count == 1

    def test_snapshot_restore(self):
        net = small_net()
        snap = net.snapshot()
        net.nodes["eb"]._wr += 1
        net.restore(snap)
        assert net.nodes["eb"].count == 0


class TestDot:
    def test_dot_contains_nodes_and_edges(self):
        net = small_net()
        dot = to_dot(net)
        assert "digraph" in dot
        for name in ("src", "eb", "snk"):
            assert f'"{name}"' in dot
        assert '"src" -> "eb"' in dot

    def test_dot_annotates_tokens(self):
        net = Netlist("n")
        net.add(ListSource("src", []))
        net.add(ElasticBuffer("eb", init=[1, 2]))
        net.add(Sink("snk"))
        net.connect("src", "eb.i", name="a")
        net.connect("eb.o", "snk", name="b")
        assert "●●" in to_dot(net)
