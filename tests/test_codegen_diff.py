"""Differential testing of the codegen engine against the worklist engine.

The compiled engine (``engine="codegen"``, :mod:`repro.backend.pysim`)
elaborates each topology into one specialized straight-line Python module.
Its contract is the same bar PRs 3–5 held the batch engine and the
sensitivity patches to: *bit-identical* behaviour to the worklist engine —
transfer streams, per-channel statistics, protocol verdicts (including the
exact violation raised), combinational-loop diagnoses, and snapshot /
restore round-trips.  These tests reuse the :mod:`test_engine_diff` fuzz
corpus plus the canned paper designs (fig1 / fig6 / fig7), and pin the
PR 9 satellites: up-front unknown-engine rejection and the stale-code
safety guards around the compiled-module cache.
"""

import random

import pytest

from repro.backend import pysim
from repro.designs import DESIGNS
from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.fork import EagerFork
from repro.elastic.functional import Func
from repro.errors import CombinationalLoopError, ProtocolViolationError
from repro.netlist import patterns
from repro.netlist.graph import Netlist
from repro.sim.engine import (
    ENGINES,
    Simulator,
    get_default_engine,
    set_default_engine,
)
from repro.sim.stats import TransferLog
from repro.transform.bubbles import insert_bubble

from test_engine_diff import N_RANDOM_NETLISTS, _random_pipeline_params, _stats_dict
from test_fuzz import build_pipeline


def _run_one(make_net, engine, cycles):
    net = make_net()
    log = TransferLog(list(net.channels))
    sim = Simulator(net, engine=engine, observers=[log])
    sim.run(cycles)
    streams = {name: log.streams[name] for name in net.channels}
    return net, _stats_dict(sim), streams


def assert_codegen_identical(make_net, cycles=250, sink="snk"):
    """Run ``make_net()`` once per engine and compare everything observable:
    transfer streams (values *and* cycles) of every channel, the full
    per-channel statistics, and the sink's received stream."""
    net_w, stats_w, streams_w = _run_one(make_net, "worklist", cycles)
    net_c, stats_c, streams_c = _run_one(make_net, "codegen", cycles)
    assert streams_c == streams_w
    assert stats_c == stats_w
    if sink is not None and sink in net_w.nodes:
        assert net_c.nodes[sink].values == net_w.nodes[sink].values


class TestRandomPipelines:
    @pytest.mark.parametrize("seed", range(N_RANDOM_NETLISTS))
    def test_codegen_bit_identical(self, seed):
        stages, stall, kill = _random_pipeline_params(seed)
        values = list(range(25))

        def make():
            return build_pipeline(stages, stall, seed, values, kill=kill)

        assert_codegen_identical(make, cycles=250)


class TestChaosSaboteurs:
    """Chaos-wrapped corpus pipelines: the saboteur kinds register their
    own straight-line spec + tick emitters, so a wrapped netlist must
    compile (no per-node fallback on the saboteurs) and stay
    bit-identical to the worklist engine."""

    @pytest.mark.parametrize("seed", range(8))
    def test_wrapped_pipeline_bit_identical(self, seed):
        from repro.chaos import ChaosPlan, wrap

        stages, stall, kill = _random_pipeline_params(seed)
        values = list(range(25))

        def make():
            net = build_pipeline(stages, stall, seed, values, kill=kill)
            plan = ChaosPlan.seeded(seed, list(net.channels),
                                    kinds=("stall", "bubble", "corrupt"),
                                    coverage=0.6)
            wrap(net, plan)
            return net

        assert_codegen_identical(make, cycles=400)


class TestPaperDesigns:
    """The canned paper designs: fig1a/fig1d exercise the mixed
    straight-line + deferred + boxed path (eemux/shared kinds demote),
    fig6b/fig7b the speculative variable-latency/resilient compositions."""

    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_design_identical(self, name):
        assert_codegen_identical(lambda: DESIGNS[name](), cycles=200,
                                 sink=None)

    def test_fig1d_pattern_identical(self):
        assert_codegen_identical(
            lambda: patterns.fig1d(lambda g: g % 2)[0], cycles=200, sink=None
        )

    def test_deep_zbl_pipeline_identical(self):
        assert_codegen_identical(
            lambda: patterns.deep_pipeline(8, source_values=list(range(100)),
                                           stall_rate=0.4),
            cycles=200,
        )

    def test_fork_join_diamond_identical(self):
        def make():
            net = Netlist("diamond")
            net.add(ListSource("src", list(range(15))))
            net.add(EagerFork("fork", n_outputs=2))
            net.add(ElasticBuffer("p0"))
            net.add(ElasticBuffer("p1a"))
            net.add(ElasticBuffer("p1b"))
            net.add(Func("join", lambda a, b: (a, b), n_inputs=2))
            net.add(Sink("snk", stall_rate=0.3, seed=7))
            net.connect("src.o", "fork.i", name="in")
            net.connect("fork.o0", "p0.i", name="a0")
            net.connect("p0.o", "join.i0", name="a1")
            net.connect("fork.o1", "p1a.i", name="b0")
            net.connect("p1a.o", "p1b.i", name="b1")
            net.connect("p1b.o", "join.i1", name="b2")
            net.connect("join.o", "snk.i", name="out")
            return net

        assert_codegen_identical(make, cycles=200)


class TestProtocolViolationParity:
    """The inlined monitor must raise the *same* violation as the scalar
    monitor: same property, channel, cycle, and message."""

    class WithdrawingSource(ElasticBuffer):
        """Deliberately broken: withdraws a stalled token after 2 cycles.

        Subclasses ElasticBuffer only to inherit wiring; ``comb`` is
        replaced by a protocol-violating offer, so codegen demotes the node
        to the deferred loop and the violation reaches the generated
        monitor through a boxed channel.
        """

        batch_comb = None

        def __init__(self, name):
            super().__init__(name, init=(1, 2))
            self._age = 0

        def comb(self):
            changed = self.drive("o", "vp", self._age < 2)
            if self._age < 2:
                changed |= self.drive("o", "data", 7)
            changed |= self.drive("o", "sm", False)
            changed |= self.drive("i", "sp", True)
            changed |= self.drive("i", "vm", False)
            return changed

        def tick(self):
            self._age += 1

    def _net(self):
        net = Netlist("broken")
        net.add(ListSource("src", []))
        net.add(self.WithdrawingSource("bad"))
        net.add(Sink("snk", stall_rate=1.0, seed=1))
        net.connect("src.o", "bad.i", name="in")
        net.connect("bad.o", "snk.i", name="out")
        return net

    def test_same_violation_as_worklist(self):
        scalar = Simulator(self._net(), engine="worklist")
        with pytest.raises(ProtocolViolationError) as scalar_err:
            scalar.run(10)
        compiled = Simulator(self._net(), engine="codegen")
        with pytest.raises(ProtocolViolationError) as codegen_err:
            compiled.run(10)
        for attr in ("prop", "channel", "cycle"):
            assert getattr(codegen_err.value, attr) == getattr(
                scalar_err.value, attr
            )
        assert str(codegen_err.value) == str(scalar_err.value)

    def test_violation_recorded_on_monitor(self):
        sim = Simulator(self._net(), engine="codegen")
        with pytest.raises(ProtocolViolationError):
            sim.run(10)
        assert len(sim.monitor.violations) == 1


class TestLoopDiagnosisParity:
    def _loop_net(self):
        net = Netlist("loop")
        net.add(Func("f", lambda x: x, n_inputs=1))
        net.add(Func("g", lambda x: x, n_inputs=1))
        net.connect("f.o", "g.i0", name="a")
        net.connect("g.o", "f.i0", name="b")
        return net

    def test_same_unresolved_signals(self):
        diagnoses = {}
        for engine in ("worklist", "codegen"):
            sim = Simulator(self._loop_net(), engine=engine)
            with pytest.raises(CombinationalLoopError) as err:
                sim.step()
            diagnoses[engine] = (sorted(err.value.unresolved), err.value.cycle,
                                 str(err.value))
        assert diagnoses["codegen"] == diagnoses["worklist"]

    def test_partial_loop_same_diagnosis(self):
        """A loop hanging off a healthy pipeline: the pipeline part goes
        straight-line, the cyclic residue is demoted — and still reported
        identically."""

        def make_net():
            net = Netlist("mixed")
            net.add(ListSource("src", [1, 2]))
            net.add(ElasticBuffer("eb"))
            net.add(Sink("snk"))
            net.connect("src.o", "eb.i", name="in")
            net.connect("eb.o", "snk.i", name="out")
            net.add(Func("f", lambda x: x, n_inputs=1))
            net.add(Func("g", lambda x: x, n_inputs=1))
            net.connect("f.o", "g.i0", name="a")
            net.connect("g.o", "f.i0", name="b")
            return net

        diagnoses = {}
        for engine in ("worklist", "codegen"):
            sim = Simulator(make_net(), engine=engine)
            with pytest.raises(CombinationalLoopError) as err:
                sim.step()
            diagnoses[engine] = sorted(err.value.unresolved)
        assert diagnoses["codegen"] == diagnoses["worklist"]


class TestSnapshotRestore:
    """snapshot/restore round-trips: restoring mid-run state and replaying
    must land both engines on the same streams."""

    def _make(self):
        return patterns.deep_pipeline(6, source_values=list(range(40)),
                                      stall_rate=0.3)

    def _roundtrip(self, engine):
        net = self._make()
        log = TransferLog(list(net.channels))
        sim = Simulator(net, engine=engine, observers=[log])
        sim.run(20)
        snap = sim.state()
        sim.run(15)                      # diverge past the snapshot...
        mid = {n: list(s) for n, s in log.streams.items()}
        sim.load_state(snap)             # ...then rewind and replay
        sim.run(15)
        return mid, {n: list(s) for n, s in log.streams.items()}, _stats_dict(sim)

    def test_roundtrip_matches_worklist(self):
        mid_w, final_w, stats_w = self._roundtrip("worklist")
        mid_c, final_c, stats_c = self._roundtrip("codegen")
        assert mid_c == mid_w
        assert final_c == final_w
        assert stats_c == stats_w

    def test_restore_replays_identically(self):
        """Replaying from a snapshot produces the same tail the original
        run produced.  Deterministic (no-stall) pipeline: environment rng
        draws are not sequential netlist state, so only a deterministic
        design replays bit-identically from a snapshot."""
        net = patterns.deep_pipeline(6, source_values=list(range(40)),
                                     stall_rate=0.0)
        sim = Simulator(net, engine="codegen")
        sim.run(20)
        snap = sim.state()
        log_a = TransferLog(list(net.channels))
        sim.observers.append(log_a)
        sim.run(10)
        tail_a = {n: list(s) for n, s in log_a.streams.items()}
        sim.observers.remove(log_a)
        sim.load_state(snap)
        log_b = TransferLog(list(net.channels))
        sim.observers.append(log_b)
        sim.run(10)
        tail_b = {n: list(s) for n, s in log_b.streams.items()}
        # transfer *values* replay identically; cycle numbers differ by the
        # 10 extra wall cycles, so compare the value streams.
        strip = lambda streams: {n: [v for (_c, v) in s] for n, s in streams.items()}
        assert strip(tail_b) == strip(tail_a)


class TestEngineValidation:
    """Satellite: unknown engine names are rejected up front, everywhere,
    with the valid-choices list."""

    def test_simulator_rejects_unknown_engine(self):
        net = build_pipeline(["eb"], 0.0, 0, [1, 2])
        with pytest.raises(ValueError, match=r"unknown engine 'jit'"):
            Simulator(net, engine="jit")

    def test_simulator_error_lists_choices(self):
        net = build_pipeline(["eb"], 0.0, 0, [1, 2])
        with pytest.raises(ValueError) as err:
            Simulator(net, engine="jit")
        for name in ENGINES:
            assert name in str(err.value)

    def test_set_default_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match=r"unknown engine 'turbo'"):
            set_default_engine("turbo")
        # a failed set leaves the default untouched
        assert get_default_engine() in ENGINES

    def test_sweep_spec_rejects_unknown(self):
        from repro.perf.sweep import SweepSpec

        with pytest.raises(ValueError, match="unknown engine"):
            SweepSpec(name="s", factory="deep_pipeline", base={}, grid={},
                      cycles=10, engine="warp")

    def test_cli_rejects_unknown_engine(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["--engine", "warp", "profile", "--design", "fig1d"])
        assert err.value.code == 2

    def test_codegen_listed_everywhere(self):
        assert "codegen" in ENGINES


class TestStaleCodeSafety:
    """Satellite: a mutated design can never run stale compiled code —
    mirrors the PR 4 stale-structure guards."""

    def _net(self):
        return build_pipeline(["eb", "func"], 0.0, 3, list(range(8)))

    def test_unpatched_codegen_refuses_step(self):
        net = self._net()
        sim = Simulator(net, engine="codegen")
        insert_bubble(net, "c0")
        with pytest.raises(RuntimeError, match="structurally edited"):
            sim.step()

    def test_unpatched_codegen_refuses_step_with_choices(self):
        net = self._net()
        sim = Simulator(net, engine="codegen")
        insert_bubble(net, "c0")
        with pytest.raises(RuntimeError, match="structurally edited"):
            sim.step_with_choices({})

    def test_followed_edit_re_elaborates(self):
        """A follow_edits simulator re-elaborates on the next step and runs
        the *new* topology's code — matching a fresh build exactly."""
        net = self._net()
        sim = Simulator(net, engine="codegen", follow_edits=True)
        sim.run(5)
        insert_bubble(net, "c0")
        sim.reset()
        sim.run(40)
        got = net.nodes["snk"].values

        fresh_net = self._net()
        insert_bubble(fresh_net, "c0")
        fresh = Simulator(fresh_net, engine="codegen")
        fresh.run(40)
        assert got == fresh_net.nodes["snk"].values

        ref_net = self._net()
        insert_bubble(ref_net, "c0")
        Simulator(ref_net, engine="worklist").run(40)
        assert got == ref_net.nodes["snk"].values

    def test_followed_edit_bumps_re_elaborations(self):
        pysim.clear_module_cache()
        net = self._net()
        sim = Simulator(net, engine="codegen", follow_edits=True)
        sim.step()
        before = pysim.cache_stats()["re_elaborations"]
        insert_bubble(net, "c0")           # structural change -> new topology
        sim.step()
        assert pysim.cache_stats()["re_elaborations"] == before + 1

    def test_superseded_codegen_does_not_steal_ownership(self):
        """A stale codegen simulator must refuse to run once a newer
        simulator owns the channels, instead of silently re-elaborating
        over the newer simulator's change logs."""
        net = self._net()
        old = Simulator(net, engine="codegen", follow_edits=True)
        old.step()
        new = Simulator(net)               # worklist takes over the logs
        with pytest.raises(RuntimeError, match="newer Simulator"):
            old.step()
        new.run(3)                         # the newer simulator still works


class TestModuleCache:
    def test_same_topology_hits_cache(self):
        pysim.clear_module_cache()
        Simulator(self._pipe(0), engine="codegen").run(5)
        stats0 = pysim.cache_stats()
        assert stats0["re_elaborations"] == 1
        # same topology, different seed / values: pure cache hit
        Simulator(self._pipe(1), engine="codegen").run(5)
        stats1 = pysim.cache_stats()
        assert stats1["re_elaborations"] == 1
        assert stats1["hits"] == stats0["hits"] + 1

    def test_different_flags_are_separate_modules(self):
        pysim.clear_module_cache()
        Simulator(self._pipe(0), engine="codegen").run(2)
        Simulator(self._pipe(0), engine="codegen", check_protocol=False).run(2)
        assert pysim.cache_stats()["modules"] == 2

    def test_generated_source_is_python(self):
        net = self._pipe(0)
        source = pysim.generated_source(net)
        compile(source, "<test>", "exec")  # must be valid Python
        assert "def build(env):" in source

    @staticmethod
    def _pipe(seed):
        return build_pipeline(["eb", "zbl"], 0.2, seed, list(range(10)))
