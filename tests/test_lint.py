"""Tests for the ``repro.lint`` static-analysis subsystem: one minimal
broken netlist per diagnostic code, a clean sweep over every ``patterns``
factory, report/CLI plumbing, the session hook and the dot overlay."""

import json

import pytest

from repro.cli import main
from repro.core import SharedModule, StaticScheduler
from repro.elastic import EagerFork, ElasticBuffer, Func, ListSource, Sink
from repro.elastic.channel import CONSUMER, PRODUCER, Channel
from repro.errors import LintError
from repro.lint import (
    ALL_RULES,
    CODES,
    DEFAULT_RULES,
    Diagnostic,
    cached_lint,
    resolve_rules,
    run_lint,
)
from repro.netlist import Netlist, patterns, to_dot
from repro.transform import Session


def codes_of(report):
    return {d.code for d in report.diagnostics}


def linear(net, *hops, width=8):
    for src, dst in zip(hops, hops[1:]):
        net.connect(src, dst, width=width)
    return net


# -- one minimal broken netlist per code ---------------------------------------


class TestBrokenFixtures:
    def test_dangling_port_e001(self):
        net = Netlist("dangling")
        net.add(ListSource("src", [1]))
        net.add(Func("F", fn=lambda a, b: a, n_inputs=2))
        net.add(Sink("snk"))
        linear(net, "src.o", "F.i0")
        linear(net, "F.o", "snk.i")
        report = run_lint(net)
        assert codes_of(report) == {"E001"}
        [diag] = report.errors
        assert diag.node == "F" and "F.i1" in diag.message

    def test_unbound_channel_e002(self):
        net = Netlist("unbound")
        net.add(ListSource("src", [1]))
        net.add(Sink("snk"))
        linear(net, "src.o", "snk.i")
        loose = Channel("loose", width=8)
        loose.attach(PRODUCER, "src", "o")
        net.channels["loose"] = loose
        assert "E002" in codes_of(run_lint(net))

    def test_multiply_driven_port_e003(self):
        net = Netlist("multi")
        net.add(ListSource("s0", [1]))
        rogue_src = net.add(ListSource("s1", [1]))
        net.add(Sink("snk"))
        linear(net, "s0.o", "snk.i")
        # A second channel claiming the already-bound sink port can only be
        # smuggled in past connect()'s own check.
        rogue = Channel("rogue", width=8)
        rogue.attach(PRODUCER, "s1", "o")
        rogue.attach(CONSUMER, "snk", "i")
        rogue_src._channels["o"] = rogue
        net.channels["rogue"] = rogue
        report = run_lint(net)
        assert "E003" in codes_of(report)
        assert any("snk.i" in d.message for d in report.errors)

    def test_width_mismatch_e004(self):
        net = Netlist("widths")
        net.add(ListSource("src", [1]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", width=16)
        net.connect("eb.o", "snk.i", width=8)
        report = run_lint(net)
        assert codes_of(report) == {"E004"}
        [diag] = report.errors
        assert diag.node == "eb"

    def test_width_change_through_func_is_legal(self):
        # Function blocks legitimately resize data (the real patterns go
        # 18 -> 8 bits through a shared module); only width-preserving
        # kinds are checked.
        net = Netlist("resize")
        net.add(ListSource("src", [1]))
        net.add(Func("F", fn=lambda a: a & 0xFF, n_inputs=1))
        net.add(Sink("snk"))
        net.connect("src.o", "F.i0", width=16)
        net.connect("F.o", "snk.i", width=8)
        assert run_lint(net).ok

    def test_arity_drift_e005(self):
        fork = EagerFork("fork", n_outputs=2)
        fork.n_outputs = 3        # declared arity no longer matches ports
        net = Netlist("arity")
        net.add(ListSource("src", [1]))
        net.add(fork)
        net.add(Sink("s0"))
        net.add(Sink("s1"))
        linear(net, "src.o", "fork.i")
        linear(net, "fork.o0", "s0.i")
        linear(net, "fork.o1", "s1.i")
        assert "E005" in codes_of(run_lint(net))

    def test_combinational_cycle_e101(self):
        net = Netlist("comb_loop")
        net.add(Func("F", fn=lambda a: a, n_inputs=1))
        net.add(Func("G", fn=lambda a: a, n_inputs=1))
        linear(net, "F.o", "G.i0")
        linear(net, "G.o", "F.i0")
        report = run_lint(net)
        assert "E101" in codes_of(report)
        [diag] = [d for d in report.errors if d.code == "E101"]
        assert "F" in diag.message and "G" in diag.message

    def test_zero_bubble_cycle_e102(self):
        net = Netlist("full_ring")
        for i in range(3):
            net.add(ElasticBuffer(f"eb{i}", init=(i, i), capacity=2))
        for i in range(3):
            net.connect(f"eb{i}.o", f"eb{(i + 1) % 3}.i")
        report = run_lint(net)
        assert codes_of(report) == {"E102"}

    def test_ring_with_free_slot_is_clean(self):
        net = Netlist("ring_ok")
        for i in range(3):
            init = (i,) if i < 2 else ()
            net.add(ElasticBuffer(f"eb{i}", init=init, capacity=2))
        for i in range(3):
            net.connect(f"eb{i}.o", f"eb{(i + 1) % 3}.i")
        assert run_lint(net).ok

    def test_token_free_cycle_w201(self):
        net = Netlist("empty_ring")
        for i in range(3):
            net.add(ElasticBuffer(f"eb{i}", capacity=2))
        for i in range(3):
            net.connect(f"eb{i}.o", f"eb{(i + 1) % 3}.i")
        report = run_lint(net)
        assert "W201" in codes_of(report)
        assert not report.errors

    def test_unkillable_speculation_e103(self):
        net = Netlist("unkillable")
        net.add(ListSource("a", [1, 2]))
        net.add(ListSource("b", [3, 4]))
        net.add(SharedModule("sh", fn=lambda v: v,
                             scheduler=StaticScheduler(2), n_channels=2))
        net.add(Sink("s0"))
        net.add(Sink("s1"))
        linear(net, "a.o", "sh.i0")
        linear(net, "b.o", "sh.i1")
        linear(net, "sh.o0", "s0.i")
        linear(net, "sh.o1", "s1.i")
        report = run_lint(net)
        assert codes_of(report) == {"E103"}
        assert len(report.errors) == 2   # one per shared output channel

    def test_dead_node_w202(self):
        net = Netlist("dead")
        net.add(ListSource("src", [1]))
        net.add(Sink("snk"))
        net.add(ElasticBuffer("orphan_in"))
        net.add(ElasticBuffer("orphan_out"))
        linear(net, "src.o", "snk.i")
        linear(net, "orphan_in.o", "orphan_out.i")
        linear(net, "orphan_out.o", "orphan_in.i")
        report = run_lint(net)
        dead = {d.node for d in report.diagnostics if d.code == "W202"}
        assert dead == {"orphan_in", "orphan_out"}

    def test_fork_join_imbalance_w203(self):
        net = Netlist("imbalance")
        net.add(ListSource("src", [1]))
        net.add(ListSource("other", [2]))
        net.add(EagerFork("fork", n_outputs=2))
        net.add(Func("join", fn=lambda a, b: a + b, n_inputs=2))
        net.add(Sink("snk"))
        net.add(Sink("spill"))
        linear(net, "src.o", "fork.i")
        linear(net, "fork.o0", "join.i0")
        linear(net, "fork.o1", "spill.i")     # second branch never rejoins
        linear(net, "other.o", "join.i1")
        linear(net, "join.o", "snk.i")
        report = run_lint(net)
        assert "W203" in codes_of(report)

    def test_scalar_fallback_w210(self):
        class SlowFunc(Func):
            def comb(self):
                return super().comb()

        net = Netlist("slow")
        net.add(ListSource("src", [1]))
        net.add(SlowFunc("F", fn=lambda a: a, n_inputs=1))
        net.add(Sink("snk"))
        linear(net, "src.o", "F.i0")
        linear(net, "F.o", "snk.i")
        report = run_lint(net)
        assert "W210" in codes_of(report)
        [diag] = report.warnings
        assert "SlowFunc" in diag.message


# -- every shipped design lints clean ------------------------------------------


def _sel(i):
    return i % 2


CLEAN_FACTORIES = {
    "fig1a": lambda: patterns.fig1a(_sel),
    "fig1b": lambda: patterns.fig1b(_sel),
    "fig1c": lambda: patterns.fig1c(_sel),
    "fig1d": lambda: patterns.fig1d(_sel),
    "table1_design": lambda: patterns.table1_design(),
    "kway_loop": lambda: patterns.kway_loop(_sel, k=3),
    "eb_chain": lambda: patterns.eb_chain(4),
    "token_ring": lambda: patterns.token_ring(4, 2),
    "deep_pipeline": lambda: patterns.deep_pipeline(8),
    "pipeline_with_func": lambda: patterns.pipeline_with_func(
        [1, 2, 3], lambda v: v + 1),
    "speculative_mc": lambda: patterns.speculative_mc(),
    "speculative_mc_zbl": lambda: patterns.speculative_mc(n_zbl=1),
    "speculative_mc_killable": lambda: patterns.speculative_mc(
        can_kill_sink=True),
}


class TestCleanDesigns:
    @pytest.mark.parametrize("name", sorted(CLEAN_FACTORIES))
    def test_pattern_lints_clean(self, name):
        built = CLEAN_FACTORIES[name]()
        net = built[0] if isinstance(built, tuple) else built
        report = run_lint(net)
        assert report.ok, report.format()
        assert report.diagnostics == []


# -- report / selection / caching plumbing -------------------------------------


class TestPlumbing:
    def test_code_catalog_is_complete(self):
        assert set(CODES) == {
            "E001", "E002", "E003", "E004", "E005",
            "E101", "E102", "E103", "E110", "E111",
            "W201", "W202", "W203", "W210", "W211",
        }

    def test_resolve_rules(self):
        assert resolve_rules() == DEFAULT_RULES
        assert resolve_rules("all") == ALL_RULES
        assert "sensitivity" not in DEFAULT_RULES
        assert resolve_rules("cycles") == ("cycles",)
        assert resolve_rules(["E103"]) == ("speculation",)
        assert resolve_rules(["cycles", "E102"]) == ("cycles",)
        with pytest.raises(ValueError):
            resolve_rules(["no-such-rule"])

    def test_fail_on_raises_lint_error(self):
        net = Netlist("comb_loop")
        net.add(Func("F", fn=lambda a: a, n_inputs=1))
        net.add(Func("G", fn=lambda a: a, n_inputs=1))
        linear(net, "F.o", "G.i0")
        linear(net, "G.o", "F.i0")
        report = run_lint(net)            # fail_on=None returns the report
        assert not report.ok
        with pytest.raises(LintError) as excinfo:
            run_lint(net, fail_on="error")
        assert "E101" in str(excinfo.value)
        assert excinfo.value.report.errors

    def test_fail_on_warning(self):
        net = Netlist("empty_ring")
        for i in range(3):
            net.add(ElasticBuffer(f"eb{i}"))
        for i in range(3):
            net.connect(f"eb{i}.o", f"eb{(i + 1) % 3}.i")
        run_lint(net, fail_on="error")    # warnings alone do not trip
        with pytest.raises(LintError):
            run_lint(net, fail_on="warning")
        with pytest.raises(ValueError):
            run_lint(net, fail_on="sometimes")

    def test_report_round_trips_to_json(self):
        net, _ = patterns.table1_design()
        payload = json.loads(run_lint(net).to_json())
        assert payload["ok"] is True
        assert payload["netlist"] == net.name
        assert payload["rules"] == list(DEFAULT_RULES)

    def test_cached_lint_memoizes_on_version(self):
        net, _ = patterns.table1_design()
        first = cached_lint(net)
        assert cached_lint(net) is first
        net.connect(net.add(ListSource("extra", [1])).name,
                    net.add(Sink("extra_snk")).name)
        second = cached_lint(net)
        assert second is not first
        assert cached_lint(net, force=True) is not second

    def test_severity_and_hint(self):
        diag = Diagnostic(code="E102", message="m")
        assert diag.severity == "error"
        assert "bubble" in diag.fix_hint
        assert Diagnostic(code="W202", message="m").severity == "warning"


# -- CLI -----------------------------------------------------------------------


class TestLintCli:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lint", "--design", "fig1d"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert main(["lint", "--design", "fig1a", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_script_introducing_error_fails(self, tmp_path, capsys):
        # Sharing the two pipeline stages of fig1a behind a static
        # scheduler leaves the speculative outputs with no kill point.
        script = tmp_path / "break.txt"
        script.write_text("share P0 P1 --scheduler=static --force\n")
        assert main(["lint", str(script), "--design", "fig1a"]) == 1
        out = capsys.readouterr().out
        assert "E103" in out

    def test_fail_on_never_reports_but_exits_zero(self, tmp_path, capsys):
        script = tmp_path / "break.txt"
        script.write_text("share P0 P1 --scheduler=static --force\n")
        assert main(["lint", str(script), "--design", "fig1a",
                     "--fail-on", "never"]) == 0
        assert "E103" in capsys.readouterr().out


# -- session integration -------------------------------------------------------


class TestSessionLint:
    @staticmethod
    def _ring():
        net = Netlist("ring")
        net.add(ElasticBuffer("eb0", init=(1, 2), capacity=2))
        net.add(ElasticBuffer("eb1", capacity=2))
        net.connect("eb0.o", "eb1.i")
        net.connect("eb1.o", "eb0.i")
        return net

    def test_lint_failure_rolls_back_transform(self):
        # Removing the only empty buffer leaves a full one-buffer loop —
        # structurally valid, but a zero-bubble cycle (E102).
        session = Session(self._ring(), lint_after_transforms=True)
        before = session.netlist.version
        with pytest.raises(LintError):
            session.remove_buffer("eb1")
        assert "eb1" in session.netlist.nodes
        assert set(session.netlist.channels) == {"eb0_o__eb1_i", "eb1_o__eb0_i"}
        assert session.log == []
        # rollback replays inverse edits, so the version moved but the
        # structure is back
        assert session.netlist.version >= before

    def test_lint_disabled_by_default(self):
        session = Session(self._ring())
        session.remove_buffer("eb1")     # same edit sails through
        assert "eb1" not in session.netlist.nodes


# -- dot overlay ---------------------------------------------------------------


class TestDotOverlay:
    def test_overlay_colors_offenders(self):
        net = Netlist("full_ring")
        for i in range(3):
            net.add(ElasticBuffer(f"eb{i}", init=(i, i), capacity=2))
        for i in range(3):
            net.connect(f"eb{i}.o", f"eb{(i + 1) % 3}.i")
        report = run_lint(net)
        dot = to_dot(net, diagnostics=report.diagnostics)
        assert "E102" in dot
        assert "#ffc4c4" in dot          # error fill on the flagged node
        assert "penwidth=2" in dot

    def test_clean_report_leaves_dot_unchanged(self):
        net, _ = patterns.table1_design()
        report = run_lint(net)
        assert to_dot(net, diagnostics=report.diagnostics) == to_dot(net)
