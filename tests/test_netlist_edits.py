"""The netlist edit log: versioning, subscription, inverses, replay."""

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import ListSource, Sink
from repro.elastic.functional import Func
from repro.errors import NetlistError
from repro.netlist.edits import (
    ADD_NODE,
    CONNECT,
    DISCONNECT,
    REMOVE_NODE,
    NetlistEdit,
)
from repro.netlist.graph import Netlist
from repro.sim.batch import topology_signature
from repro.transform.bubbles import insert_bubble


def structure(net):
    """Order-insensitive structural signature: inverse replay restores the
    wiring exactly, but a re-created channel re-enters the netlist dict at
    the end (iteration order is bookkeeping, not behaviour)."""
    nodes, channels = topology_signature(net)
    return (tuple(sorted(nodes)), tuple(sorted(channels)))


def small_net():
    net = Netlist("edits")
    net.add(ListSource("src", [1, 2, 3]))
    net.add(ElasticBuffer("eb"))
    net.add(Sink("snk"))
    net.connect("src.o", "eb.i", name="in", width=4)
    net.connect("eb.o", "snk.i", name="out", width=4)
    return net


class TestVersionAndEmission:
    def test_every_mutator_bumps_version_and_emits(self):
        net = Netlist("v")
        seen = []
        net.subscribe(seen.append)
        v0 = net.version
        net.add(ListSource("src", [1]))
        net.add(Sink("snk"))
        net.connect("src.o", "snk.i", name="ch")
        net.disconnect("ch")
        net.remove("snk")
        assert net.version == v0 + 5
        assert [e.op for e in seen] == [
            ADD_NODE, ADD_NODE, CONNECT, DISCONNECT, REMOVE_NODE,
        ]

    def test_connect_edit_carries_endpoints_and_width(self):
        net = small_net()
        seen = []
        net.subscribe(seen.append)
        net.disconnect("in")
        (edit,) = seen
        assert edit.op == DISCONNECT
        assert edit.src == ("src", "o")
        assert edit.dst == ("eb", "i")
        assert edit.width == 4

    def test_unsubscribe_stops_delivery(self):
        net = small_net()
        seen = []
        fn = net.subscribe(seen.append)
        net.unsubscribe(fn)
        net.disconnect("in")
        assert seen == []

    def test_state_changes_do_not_bump_version(self):
        net = small_net()
        v0 = net.version
        net.reset()
        net.restore(net.snapshot())
        assert net.version == v0

    def test_failed_mutation_neither_bumps_nor_emits(self):
        net = small_net()
        seen = []
        net.subscribe(seen.append)
        v0 = net.version
        with pytest.raises(NetlistError):
            net.remove("eb")          # ports still connected
        with pytest.raises(NetlistError):
            net.add(ElasticBuffer("eb"))   # duplicate name
        assert net.version == v0 and seen == []


class TestInversesAndReplay:
    def test_inverse_round_trip_restores_structure(self):
        net = small_net()
        reference = structure(net)
        edits = []
        net.subscribe(edits.append)
        insert_bubble(net, "in")
        assert structure(net) != reference
        for edit in reversed(edits):
            edit.inverse().apply(net)
        assert structure(net) == reference
        net.validate()

    def test_replay_reapplies_forward(self):
        net = small_net()
        edits = []
        fn = net.subscribe(edits.append)
        insert_bubble(net, "in")
        net.unsubscribe(fn)        # replays below would re-record
        after = structure(net)
        for edit in reversed(edits):
            edit.inverse().apply(net)
        for edit in edits:
            edit.apply(net)
        assert structure(net) == after
        net.validate()

    def test_replay_emits_to_subscribers(self):
        net = small_net()
        edits = []
        net.subscribe(edits.append)
        net.disconnect("out")
        replayed = []
        net.subscribe(replayed.append)
        net.apply_edit(edits[0].inverse())
        assert [e.op for e in replayed] == [CONNECT]

    def test_unknown_op_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            NetlistEdit("frobnicate").apply(net)
        with pytest.raises(KeyError):
            NetlistEdit("frobnicate").inverse()


class TestCloneSemantics:
    def test_clone_does_not_carry_subscribers(self):
        net = small_net()
        seen = []
        net.subscribe(seen.append)
        dup = net.clone()
        insert_bubble(dup, "in")
        assert seen == []
        # ... and the original still reports its own edits.
        net.disconnect("out")
        assert len(seen) == 1

    def test_clone_preserves_version(self):
        net = small_net()
        insert_bubble(net, "in")
        assert net.clone().version == net.version

    def test_add_after_undo_preserves_node_object_state(self):
        """Removed nodes re-enter with their sequential state intact —
        structural undo does not clone."""
        net = Netlist("obj")
        net.add(ListSource("src", [1]))
        eb = net.add(ElasticBuffer("eb", init=(7,)))
        net.add(Sink("snk"))
        net.connect("src.o", "eb.i", name="a")
        net.connect("eb.o", "snk.i", name="b")
        edits = []
        net.subscribe(edits.append)
        net.disconnect("a")
        net.disconnect("b")
        net.remove("eb")
        for edit in reversed(edits):
            edit.inverse().apply(net)
        assert net.nodes["eb"] is eb
        assert eb.count == 1
