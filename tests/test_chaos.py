"""The elastic-protocol chaos harness (:mod:`repro.chaos`).

The paper's central claim is latency-insensitivity: inserting empty
buffers or stalling channels must not change *what* a SELF design
computes, only *when*.  This suite turns that claim into an adversarial
test battery:

* saboteur nodes (stall / bubble / corrupt) behave bit-identically on
  all four engines (the diff-fuzz suites carry the corpus; here the
  paper designs and the codegen-engagement pin);
* the stream-invariance oracle passes on every canned design under
  stall/bubble injection — and *fails* on a deliberately
  latency-sensitive mutant and under state corruption (an oracle that
  cannot fail proves nothing);
* exhaustive mode verifies the speculative composition over every
  injection interleaving, and catches a broken-kill mutant with a
  concrete counterexample trace;
* the soak loop survives SIGINT with a flushed checkpoint (exit 130
  through the real CLI) and resumes byte-identically;
* wrap/unwrap is a true inverse through the edit log (warm simulators
  patch through it), lint flags leftover saboteurs, and the liveness
  monitor's lifecycle hooks keep it reusable across runs and edits.
"""

import json

import pytest

from repro.chaos import (
    ChaosFault,
    ChaosPlan,
    broken_kill_design,
    check_stream_invariance,
    explore_invariance,
    latency_sensitive_design,
    run_soak,
    unwrap,
    wrap,
)
from repro.designs import DESIGNS, build_design, build_mc_design
from repro.errors import ChaosError
from repro.sim.engine import Simulator
from repro.sim.monitors import BoundedLivenessMonitor


# -- plans -------------------------------------------------------------------

class TestChaosPlan:
    def test_seeded_is_deterministic(self):
        channels = ["a", "b", "c", "d"]
        p1 = ChaosPlan.seeded(7, channels)
        p2 = ChaosPlan.seeded(7, channels)
        assert p1 == p2
        assert p1.digest() == p2.digest()

    def test_seed_changes_plan_and_digest(self):
        channels = ["a", "b", "c", "d"]
        assert ChaosPlan.seeded(1, channels).digest() != \
            ChaosPlan.seeded(2, channels).digest()

    def test_seeded_never_empty(self):
        plan = ChaosPlan.seeded(3, ["only"], coverage=0.0)
        assert len(plan.faults) >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError):
            ChaosFault(channel="x", kind="gremlin")

    def test_unknown_channel_rejected_by_wrap(self):
        net = build_design("fig6b")
        plan = ChaosPlan(faults=(ChaosFault(channel="nope"),), seed=0)
        with pytest.raises(ChaosError):
            wrap(net, plan)


# -- wrap / unwrap as a true inverse -----------------------------------------

class TestWrapUnwrap:
    def test_unwrap_restores_structure(self):
        net = build_design("fig6b")
        nodes = set(net.nodes)
        channels = set(net.channels)
        plan = ChaosPlan.seeded(5, list(net.channels))
        handle = wrap(net, plan)
        assert set(net.nodes) != nodes          # saboteurs spliced in
        assert all(node.kind.startswith("chaos_")
                   for name, node in net.nodes.items() if name not in nodes)
        unwrap(handle)
        assert set(net.nodes) == nodes
        assert set(net.channels) == channels

    def test_unwrapped_design_still_runs_clean(self):
        def golden():
            net = build_design("fig7b")
            Simulator(net).run(120)
            return {n: list(node.values) for n, node in net.nodes.items()
                    if isinstance(getattr(type(node), "values", None),
                                  property)}

        reference = golden()
        net = build_design("fig7b")
        handle = wrap(net, ChaosPlan.seeded(2, list(net.channels)))
        unwrap(handle)
        Simulator(net).run(120)
        got = {n: list(node.values) for n, node in net.nodes.items()
               if isinstance(getattr(type(node), "values", None), property)}
        assert got == reference

    def test_warm_simulator_patches_through_wrap_and_unwrap(self):
        """A follow_edits simulator survives wrap -> run -> unwrap -> run
        without a rebuild: the saboteur splice and its inverse both go
        through the PR 4 edit log."""
        net = build_design("fig6b")
        sim = Simulator(net, follow_edits=True)
        sim.run(15)
        plan = ChaosPlan(
            faults=(ChaosFault(channel="out", kind="bubble", rate=0.4,
                               seed=3),),
            seed=3)
        handle = wrap(net, plan)
        sim.run(15)
        unwrap(handle)
        sim.run(15)
        assert sim.cycle == 45
        assert not any(node.kind.startswith("chaos_")
                       for node in net.nodes.values())


# -- the oracle: positive direction ------------------------------------------

class TestStreamInvariance:
    @pytest.mark.parametrize("design", sorted(DESIGNS))
    @pytest.mark.parametrize("engine", [None, "naive", "batch", "codegen"])
    def test_paper_designs_latency_insensitive(self, design, engine):
        plan = ChaosPlan.seeded(11, list(build_design(design).channels))
        report = check_stream_invariance(lambda: build_design(design), plan,
                                         cycles=100, engine=engine)
        assert report.ok, (report.mismatches, report.stuck)
        assert report.plan_digest == plan.digest()

    @pytest.mark.parametrize("seed", [1, 3])
    def test_multiple_seeds(self, seed):
        plan = ChaosPlan.seeded(seed, list(build_design("fig6b").channels))
        report = check_stream_invariance(lambda: build_design("fig6b"),
                                         plan, cycles=120)
        assert report.ok, (report.mismatches, report.stuck)


# -- the oracle: negative direction ------------------------------------------

class TestOracleCatchesViolations:
    def test_latency_sensitive_mutant_fails(self):
        """A buffer that folds arrival *time* into its data is the
        canonical non-elastic mutant: stall injection must change its
        output stream, and the oracle must say so."""
        plan = ChaosPlan.seeded(5, ["in", "out"])
        report = check_stream_invariance(latency_sensitive_design, plan,
                                         cycles=120)
        assert not report.ok
        assert report.mismatches

    def test_corruption_is_visible(self):
        """State corruption is *supposed* to break stream invariance —
        that failure is the proof the oracle actually compares data."""
        plan = ChaosPlan(
            faults=(ChaosFault(channel="out", kind="corrupt", rate=0.8,
                               seed=2),),
            seed=2)
        report = check_stream_invariance(lambda: build_design("fig6b"),
                                         plan, cycles=120)
        assert not report.ok
        assert any("diverged" in m for m in report.mismatches)

    def test_corruption_budget_respected(self):
        """budget=0 disarms the corruptor entirely: the wrapped run is a
        pure wire and the oracle passes."""
        plan = ChaosPlan(
            faults=(ChaosFault(channel="out", kind="corrupt", rate=0.8,
                               seed=2, budget=0),),
            seed=2)
        report = check_stream_invariance(lambda: build_design("fig6b"),
                                         plan, cycles=120)
        assert report.ok, (report.mismatches, report.stuck)


# -- exhaustive mode ----------------------------------------------------------

class TestExhaustive:
    def test_speculative_composition_verified_under_stall_choices(self):
        """Every stall interleaving of the speculative composition stays
        protocol-clean and deadlock-free: the paper's Section 4.2 result,
        now under adversarial injection."""
        plan = ChaosPlan(
            faults=(ChaosFault(channel="out", kind="stall", budget=2),),
            seed=0)
        report = explore_invariance(lambda: build_mc_design("spec-toggle"),
                                    plan, max_states=20000)
        assert report.ok, (report.deadlocks,
                           report.result and report.result.violations)
        assert report.result.complete
        assert report.result.n_states > 100   # choices actually explored

    def test_broken_kill_mutant_caught_with_counterexample(self):
        """A buffer that never honours S- violates the cancellation
        invariant under *some* injection interleaving; exhaustive mode
        finds it and hands back a concrete state path."""
        plan = ChaosPlan(
            faults=(ChaosFault(channel="out", kind="stall", budget=1),),
            seed=0)
        report = explore_invariance(broken_kill_design, plan,
                                    max_states=20000)
        assert not report.ok
        assert report.result.violations
        assert report.counterexample, "violation must carry a trace"
        # the trace ends at the violating state
        state = int(str(report.result.violations[0]).split()[1])
        assert report.counterexample[-1] == state
        assert report.counterexample[0] == 0

    def test_incomplete_exploration_reports_no_phantom_deadlocks(self):
        plan = ChaosPlan(
            faults=(ChaosFault(channel="out", kind="stall", budget=2),),
            seed=0)
        report = explore_invariance(lambda: build_mc_design("spec-toggle"),
                                    plan, max_states=50)
        assert not report.ok            # truncated, so not a verdict
        assert not report.result.complete
        assert report.deadlocks == []   # frontier states are not deadlocks


# -- soak + recovery ----------------------------------------------------------

class TestSoak:
    def test_soak_deterministic_and_reports_identity(self):
        a = run_soak("fig6b", seed=1, iterations=2, cycles=60)
        b = run_soak("fig6b", seed=1, iterations=2, cycles=60)
        assert a == b
        assert a["ok"]
        for i, row in enumerate(a["rows"]):
            assert row["iteration"] == i
            assert row["seed"] == 1 * 1000003 + i
            assert row["plan_digest"]

    def test_sigint_flushes_checkpoint_and_exits_130(self, tmp_path):
        """The PR 6 fault harness pins recovery: a synthetic SIGINT at
        iteration 2 must flush completed rows, exit 130 through the real
        CLI entry point, and the resumed soak must equal an uninterrupted
        one byte for byte."""
        from repro import cli
        from repro.runtime.checkpoint import content_key, load_checkpoint
        from repro.runtime.faults import Fault, FaultPlan, install_plan

        ckpt = str(tmp_path / "soak.ckpt")
        argv = ["chaos", "--design", "fig6b", "--seed", "1", "--soak",
                "--iterations", "3", "--cycles", "60",
                "--checkpoint", ckpt]
        install_plan(FaultPlan([Fault("chaos_iter", 2, kind="sigint")]))
        try:
            code = cli.main(argv)
        finally:
            install_plan(None)
        assert code == 130

        key = content_key(("chaos-soak-v1", "fig6b", 1, 3, 60, "default",
                           0.5, ("stall", "bubble")))
        body = load_checkpoint(ckpt, "chaos", key)
        assert body is not None and len(body["rows"]) == 2

        assert cli.main(argv + ["--json"]) in (0, 1)
        resumed = load_checkpoint(ckpt, "chaos", key)
        clean = run_soak("fig6b", seed=1, iterations=3, cycles=60)
        assert resumed["rows"] == clean["rows"]

    @pytest.mark.soak
    def test_long_soak(self):
        """Excluded from tier-1 (REPRO_RUN_SOAK=1 to include): a longer
        randomized campaign across designs and seeds."""
        for design in sorted(DESIGNS):
            payload = run_soak(design, seed=3, iterations=6, cycles=150)
            assert payload["ok"], payload["rows"]


# -- serve integration --------------------------------------------------------

class TestServeJob:
    def test_chaos_job_normalizes_and_runs_deterministically(self):
        from repro.serve.jobs import job_key, run_job, validate_job

        spec = validate_job({"kind": "chaos", "design": "fig6b", "seed": 1,
                             "iterations": 2, "cycles": 60})
        assert spec["iterations"] == 2 and spec["cycles"] == 60
        assert job_key(spec) == job_key(dict(spec))
        assert run_job(spec) == run_job(spec)

    def test_chaos_job_rejects_foreign_keys(self):
        from repro.errors import ServeError
        from repro.serve.jobs import validate_job

        with pytest.raises(ServeError):
            validate_job({"kind": "chaos", "design": "fig6b",
                          "max_states": 10})

    def test_chaos_job_defaults(self):
        from repro.serve.jobs import validate_job

        spec = validate_job({"kind": "chaos", "design": "fig7b"})
        assert spec == {"kind": "chaos", "seed": 0, "design": "fig7b",
                        "cycles": 150, "iterations": 5}


# -- CLI ----------------------------------------------------------------------

class TestCli:
    def test_json_reports_resolved_seed_and_plan_digest(self, capsys):
        from repro import cli

        code = cli.main(["chaos", "--design", "fig6b", "--seed", "4",
                         "--cycles", "60", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == (0 if payload["ok"] else 1)
        assert payload["seed"] == 4
        net = build_design("fig6b")
        assert payload["plan_digest"] == \
            ChaosPlan.seeded(4, list(net.channels)).digest()
        assert payload["faults"]

    def test_corrupt_kind_fails_exit_1(self, capsys):
        from repro import cli

        code = cli.main(["chaos", "--design", "fig6b", "--seed", "3",
                         "--cycles", "80", "--kinds", "corrupt", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1 and not payload["ok"]

    def test_exhaustive_requires_mc_design(self, capsys):
        from repro import cli

        assert cli.main(["chaos", "--design", "fig6b", "--exhaustive"]) == 2
        assert cli.main(["chaos", "--design", "spec-toggle"]) == 2

    def test_exhaustive_spec_toggle_ok(self, capsys):
        from repro import cli

        code = cli.main(["chaos", "--design", "spec-toggle", "--seed", "2",
                         "--exhaustive", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0 and payload["ok"]
        assert payload["complete"] and not payload["violations"]

    def test_unknown_kind_rejected(self, capsys):
        from repro import cli

        assert cli.main(["chaos", "--design", "fig6b",
                         "--kinds", "gremlin"]) == 2


# -- lint ---------------------------------------------------------------------

class TestLint:
    def test_w211_flags_leftover_saboteurs(self):
        from repro.lint import run_lint

        net = build_design("fig6b")
        handle = wrap(net, ChaosPlan.seeded(1, list(net.channels)))
        report = run_lint(net)
        flagged = {d.node for d in report.by_code("W211")}
        assert flagged == set(handle.saboteurs)
        assert not report.errors        # saboteurs are protocol-clean
        unwrap(handle)
        assert not run_lint(net).by_code("W211")

    @pytest.mark.parametrize("design", sorted(DESIGNS))
    def test_factory_designs_stay_clean(self, design):
        from repro.lint import run_lint

        assert not run_lint(build_design(design)).by_code("W211")


# -- codegen engagement -------------------------------------------------------

class TestCodegenEngagement:
    def test_saboteurs_compile_to_straight_line_tasks(self):
        """Each saboteur kind must register real spec/tick emitters with
        the codegen backend — visible as named straight-line comb and
        tick sections in the generated module, not per-node interpreter
        fallbacks.  (A fully combinational pipeline keeps every saboteur
        in the straight-line region; inside a boxed shared/eemux region
        only the tick section would show.)"""
        from repro.backend.pysim import generated_source
        from repro.elastic.buffers import ElasticBuffer
        from repro.elastic.environment import ListSource, Sink
        from repro.netlist.graph import Netlist

        net = Netlist("line")
        net.add(ListSource("src", list(range(12))))
        net.add(ElasticBuffer("e1"))
        net.add(ElasticBuffer("e2"))
        net.add(Sink("snk", stall_rate=0.2, seed=3))
        net.connect("src.o", "e1.i", name="in")
        net.connect("e1.o", "e2.i", name="mid")
        net.connect("e2.o", "snk.i", name="out")
        faults = tuple(
            ChaosFault(channel=ch, kind=kind, rate=0.3, seed=i)
            for i, (ch, kind) in enumerate(
                [("in", "stall"), ("mid", "bubble"), ("out", "corrupt")]))
        handle = wrap(net, ChaosPlan(faults=faults, seed=0))
        source = generated_source(net)
        for name in handle.saboteurs:
            node = net.nodes[name]
            assert f"# {name} ({node.kind})" in source
            assert f"# tick {name} ({node.kind})" in source


# -- liveness-monitor lifecycle (satellite 1) ---------------------------------

class TestBoundedLivenessLifecycle:
    def _stalled_net(self):
        from repro.elastic.buffers import ElasticBuffer
        from repro.elastic.environment import ListSource, Sink
        from repro.netlist.graph import Netlist

        net = Netlist("stall")
        net.add(ListSource("src", [1, 2, 3]))
        net.add(ElasticBuffer("eb"))
        net.add(Sink("snk", stall_rate=1.0, seed=1))   # never accepts
        net.connect("src.o", "eb.i", name="in")
        net.connect("eb.o", "snk.i", name="out")
        return net

    def test_reset_clears_armed_counters_and_stuck(self):
        net = self._stalled_net()
        monitor = BoundedLivenessMonitor(net, window=10)
        sim = Simulator(net, observers=(monitor,))
        sim.run(40)
        assert monitor.stuck                    # the full sink wedges "out"
        monitor.reset()
        assert monitor.stuck == [] and monitor._since_event == {}
        # a fresh run over a fresh design re-arms from zero
        net2 = self._stalled_net()
        monitor2 = BoundedLivenessMonitor(net2, window=50)
        Simulator(net2, observers=(monitor2,)).run(20)
        assert monitor2.stuck == []             # window not yet reached

    def test_structure_changed_restarts_windows(self):
        net = self._stalled_net()
        monitor = BoundedLivenessMonitor(net, window=30)
        sim = Simulator(net, observers=(monitor,))
        sim.run(25)                             # counters nearly expired
        assert not monitor.stuck
        monitor.structure_changed()             # splice forgives the past
        sim.run(25)
        # each window restarted at cycle 25; 25 further cycles < 30
        assert [c for _, c in monitor.stuck] == []
        sim.run(10)
        assert monitor.stuck                    # but it still fires later

    def test_named_structure_change_only_forgets_that_channel(self):
        net = self._stalled_net()
        monitor = BoundedLivenessMonitor(net, window=100)
        Simulator(net, observers=(monitor,)).run(10)
        counters = dict(monitor._since_event)
        monitor.structure_changed("out")
        assert "out" not in monitor._since_event
        remaining = {k: v for k, v in counters.items() if k != "out"}
        assert monitor._since_event == remaining

    def test_wrap_notifies_warm_simulator_observers(self):
        """Wrapping mid-run must reach observers through the engine's
        _refresh_structures hook — the monitor restarts its windows
        instead of blaming the splice for the freeze it caused."""
        net = build_design("fig6b")
        monitor = BoundedLivenessMonitor(net, window=40)
        sim = Simulator(net, follow_edits=True, observers=(monitor,))
        sim.run(35)
        handle = wrap(net, ChaosPlan(
            faults=(ChaosFault(channel="out", kind="stall", rate=0.9,
                               seed=1),),
            seed=1))
        sim.run(40)
        unwrap(handle)
        sim.run(40)
        assert monitor.stuck == []
