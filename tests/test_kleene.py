"""Unit tests for the three-valued logic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kleene import as_bool, kand, keq, kite, knot, known, kor

TRI = st.sampled_from([True, False, None])


class TestKand:
    def test_all_true(self):
        assert kand(True, True, True) is True

    def test_false_dominates_unknown(self):
        assert kand(None, False) is False
        assert kand(False, None) is False

    def test_unknown_without_false(self):
        assert kand(True, None) is None

    def test_empty_is_true(self):
        assert kand() is True


class TestKor:
    def test_any_true(self):
        assert kor(False, True) is True

    def test_true_dominates_unknown(self):
        assert kor(None, True) is True

    def test_unknown_without_true(self):
        assert kor(False, None) is None

    def test_empty_is_false(self):
        assert kor() is False


class TestKnot:
    def test_values(self):
        assert knot(True) is False
        assert knot(False) is True
        assert knot(None) is None


class TestKite:
    def test_resolved_condition(self):
        assert kite(True, 1, 2) == 1
        assert kite(False, 1, 2) == 2

    def test_unknown_condition_agreeing_branches(self):
        assert kite(None, 5, 5) == 5

    def test_unknown_condition_disagreeing_branches(self):
        assert kite(None, 1, 2) is None

    def test_unknown_condition_unknown_branches(self):
        assert kite(None, None, None) is None


class TestKeq:
    def test_known(self):
        assert keq(3, 3) is True
        assert keq(3, 4) is False

    def test_unknown(self):
        assert keq(None, 3) is None
        assert keq(3, None) is None


class TestKnownAsBool:
    def test_known(self):
        assert known(1, True, "x")
        assert not known(1, None)

    def test_as_bool(self):
        assert as_bool(True) is True
        assert as_bool(False) is False
        with pytest.raises(ValueError):
            as_bool(None, "sig")


class TestBinaryTruthTables:
    """Exhaustive 3x3 truth tables for the 2-argument fast paths — pinned
    so the early-exit special cases can never drift from strong Kleene."""

    KAND_TABLE = {
        (True, True): True, (True, False): False, (True, None): None,
        (False, True): False, (False, False): False, (False, None): False,
        (None, True): None, (None, False): False, (None, None): None,
    }

    KOR_TABLE = {
        (True, True): True, (True, False): True, (True, None): True,
        (False, True): True, (False, False): False, (False, None): None,
        (None, True): True, (None, False): None, (None, None): None,
    }

    @pytest.mark.parametrize("a", [True, False, None])
    @pytest.mark.parametrize("b", [True, False, None])
    def test_kand_two_args(self, a, b):
        assert kand(a, b) is self.KAND_TABLE[(a, b)]

    @pytest.mark.parametrize("a", [True, False, None])
    @pytest.mark.parametrize("b", [True, False, None])
    def test_kor_two_args(self, a, b):
        assert kor(a, b) is self.KOR_TABLE[(a, b)]

    @given(a=TRI, b=TRI)
    def test_two_arg_matches_general_path(self, a, b):
        """The fast path must agree with the n-ary fold it bypasses."""
        assert kand(a, b) is kand(a, b, True)
        assert kor(a, b) is kor(a, b, False)


class TestMonotonicity:
    """Refining an unknown input must never flip a resolved output —
    the property the fix-point simulator relies on."""

    @given(xs=st.lists(TRI, min_size=1, max_size=4), idx=st.integers(0, 3),
           value=st.booleans())
    def test_kand_monotone(self, xs, idx, value):
        idx = idx % len(xs)
        before = kand(*xs)
        if xs[idx] is None:
            refined = list(xs)
            refined[idx] = value
            after = kand(*refined)
            assert before is None or after == before

    @given(xs=st.lists(TRI, min_size=1, max_size=4), idx=st.integers(0, 3),
           value=st.booleans())
    def test_kor_monotone(self, xs, idx, value):
        idx = idx % len(xs)
        before = kor(*xs)
        if xs[idx] is None:
            refined = list(xs)
            refined[idx] = value
            after = kor(*refined)
            assert before is None or after == before

    @given(cond=TRI, t=TRI, f=TRI, value=st.booleans())
    def test_kite_monotone_in_condition(self, cond, t, f, value):
        before = kite(cond, t, f)
        if cond is None:
            after = kite(value, t, f)
            assert before is None or after == before
