"""Datapath tests: adders, approximate adder + detector, ALU, SECDED —
functional correctness and bit-exact agreement with the gate level."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datapath.adders import (
    add_functional,
    adder_inputs,
    adder_sum,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.datapath.alu import ALU_OPS, Alu
from repro.datapath.approx import (
    approx_add_functional,
    approx_adder_gates,
    approx_error_detector_gates,
    approx_error_functional,
    approx_exact_mismatch,
    error_rate_estimate,
)
from repro.datapath.secded import CORRECTED, DOUBLE, OK, PARITY_FIXED, Secded
from repro.tech.library import DEFAULT_TECH


class TestFunctionalAdd:
    @given(a=st.integers(0, 255), b=st.integers(0, 255), cin=st.integers(0, 1))
    def test_matches_python(self, a, b, cin):
        value, carry = add_functional(a, b, 8, cin)
        assert value == (a + b + cin) & 0xFF
        assert carry == ((a + b + cin) >> 8) & 1


class TestGateAdders:
    @pytest.mark.parametrize("builder", [ripple_carry_adder, kogge_stone_adder])
    def test_exhaustive_4bit(self, builder):
        net = builder(4)
        for a in range(16):
            for b in range(16):
                outputs = net.evaluate(adder_inputs(a, b, 4))
                value, carry = adder_sum(outputs, 4)
                assert value == (a + b) & 0xF
                assert carry == (a + b) >> 4

    @pytest.mark.parametrize("builder", [ripple_carry_adder, kogge_stone_adder])
    def test_random_16bit_with_cin(self, builder):
        net = builder(16, with_cin=True)
        rng = random.Random(0)
        for _ in range(50):
            a, b, cin = rng.getrandbits(16), rng.getrandbits(16), rng.getrandbits(1)
            outputs = net.evaluate(adder_inputs(a, b, 16, cin))
            value, carry = adder_sum(outputs, 16)
            assert value == (a + b + cin) & 0xFFFF
            assert carry == (a + b + cin) >> 16

    def test_prefix_adder_is_faster_than_ripple(self):
        """The Kogge-Stone log-depth structure must beat ripple at 64 bits
        (and cost more area) — the paper's prefix-adder choice."""
        rca = ripple_carry_adder(64)
        ks = kogge_stone_adder(64)
        assert ks.delay(DEFAULT_TECH) < rca.delay(DEFAULT_TECH) / 2
        assert ks.area(DEFAULT_TECH) > rca.area(DEFAULT_TECH)


class TestApproxAdder:
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_detector_never_misses(self, a, b):
        """The conservative detector must flag every real mismatch — the
        property that makes speculative replay *correct*."""
        if approx_exact_mismatch(a, b, 8, 3):
            assert approx_error_functional(a, b, 8, 3) == 1

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_no_flag_means_exact(self, a, b):
        if not approx_error_functional(a, b, 8, 3):
            assert approx_add_functional(a, b, 8, 3) == (a + b) & 0xFF

    def test_gate_level_matches_functional(self):
        net = approx_adder_gates(8, 3)
        det = approx_error_detector_gates(8, 3)
        rng = random.Random(1)
        for _ in range(100):
            a, b = rng.getrandbits(8), rng.getrandbits(8)
            outputs = net.evaluate(adder_inputs(a, b, 8))
            value = sum(1 << i for i in range(8) if outputs[f"s{i}"])
            assert value == approx_add_functional(a, b, 8, 3)
            err = det.evaluate(adder_inputs(a, b, 8))["err"]
            assert int(err) == approx_error_functional(a, b, 8, 3)

    def test_approx_is_faster_than_exact(self):
        exact = ripple_carry_adder(8)
        approx = approx_adder_gates(8, 3)
        detector = approx_error_detector_gates(8, 3)
        assert approx.delay(DEFAULT_TECH) < exact.delay(DEFAULT_TECH)
        assert detector.delay(DEFAULT_TECH) < exact.delay(DEFAULT_TECH)

    def test_error_rate_is_low_for_random_operands(self):
        rng = random.Random(2)
        flags = sum(
            approx_error_functional(rng.getrandbits(8), rng.getrandbits(8), 8, 3)
            for _ in range(2000)
        )
        measured = flags / 2000
        assert measured < 0.65        # mostly single-cycle
        # union-bound estimate is the right order of magnitude
        assert error_rate_estimate(8, 3) >= measured / 3


class TestAlu:
    @pytest.fixture()
    def alu(self):
        return Alu(width=8, window=3)

    @given(op=st.sampled_from(sorted(ALU_OPS.values())),
           a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=200)
    def test_exact_semantics(self, op, a, b):
        alu = Alu(width=8, window=3)
        value = alu.exact(op, a, b).value
        if op == ALU_OPS["add"]:
            assert value == (a + b) & 0xFF
        elif op == ALU_OPS["sub"]:
            assert value == (a - b) & 0xFF
        elif op == ALU_OPS["and"]:
            assert value == a & b
        elif op == ALU_OPS["or"]:
            assert value == a | b
        else:
            assert value == a ^ b

    @given(op=st.sampled_from(sorted(ALU_OPS.values())),
           a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=200)
    def test_approx_err_flag_sound(self, op, a, b):
        """Whenever approx differs from exact, err must be raised."""
        alu = Alu(width=8, window=3)
        result = alu.approx(op, a, b)
        if result.value != alu.exact(op, a, b).value:
            assert result.err == 1

    def test_logic_ops_never_flag(self, alu):
        for op_name in ("and", "or", "xor"):
            assert alu.approx(ALU_OPS[op_name], 0xFF, 0xFF).err == 0

    def test_stats_shapes(self, alu):
        stats = alu.stats(DEFAULT_TECH)
        assert stats["approx"]["delay"] < stats["exact"]["delay"]
        assert stats["err"]["delay"] < stats["exact"]["delay"]
        assert all(s["area"] > 0 for s in stats.values())


class TestSecded:
    @pytest.fixture(scope="class")
    def code(self):
        return Secded(64)

    def test_code_geometry(self, code):
        assert code.check_bits == 7
        assert code.code_bits == 72     # 64 data + 7 check + overall parity

    @given(data=st.integers(0, 2**64 - 1))
    @settings(max_examples=100)
    def test_roundtrip_clean(self, data):
        code = Secded(64)
        result = code.decode(code.encode(data))
        assert result.status == OK
        assert result.data == data

    @given(data=st.integers(0, 2**64 - 1), bit=st.integers(0, 71))
    @settings(max_examples=200)
    def test_all_single_errors_corrected(self, data, bit):
        code = Secded(64)
        corrupted = code.inject(code.encode(data), bit)
        result = code.decode(corrupted)
        assert result.status in (CORRECTED, PARITY_FIXED)
        assert result.data == data

    @given(data=st.integers(0, 2**64 - 1),
           bits=st.lists(st.integers(0, 71), min_size=2, max_size=2, unique=True))
    @settings(max_examples=200)
    def test_all_double_errors_detected(self, data, bits):
        code = Secded(64)
        corrupted = code.inject(code.encode(data), *bits)
        result = code.decode(corrupted)
        assert result.status == DOUBLE

    def test_exhaustive_single_errors_one_word(self, code):
        data = 0xDEADBEEFCAFEF00D
        encoded = code.encode(data)
        for bit in range(code.code_bits):
            result = code.decode(code.inject(encoded, bit))
            assert result.data == data

    def test_gate_encoder_matches_functional(self, code):
        net = code.encoder_gates()
        rng = random.Random(3)
        for _ in range(10):
            data = rng.getrandbits(64)
            inputs = {f"d{i}": bool((data >> i) & 1) for i in range(64)}
            outputs = net.evaluate(inputs)
            encoded = sum(1 << i for i in range(72) if outputs[f"c{i}"])
            assert encoded == code.encode(data)

    def test_gate_decoder_corrects_single_error(self, code):
        net = code.decoder_gates()
        rng = random.Random(4)
        for _ in range(5):
            data = rng.getrandbits(64)
            corrupted = code.inject(code.encode(data), rng.randrange(71))
            inputs = {f"c{i}": bool((corrupted >> i) & 1) for i in range(72)}
            outputs = net.evaluate(inputs)
            decoded = sum(1 << i for i in range(64) if outputs[f"d{i}"])
            assert decoded == data
            assert outputs["single"] is True
            assert outputs["double"] is False

    def test_gate_decoder_flags_double_error(self, code):
        net = code.decoder_gates()
        data = 12345678901234567890 & (2**64 - 1)
        corrupted = code.inject(code.encode(data), 3, 40)
        inputs = {f"c{i}": bool((corrupted >> i) & 1) for i in range(72)}
        outputs = net.evaluate(inputs)
        assert outputs["double"] is True

    def test_inject_validates_position(self, code):
        with pytest.raises(ValueError):
            code.inject(0, 99)
