"""Model checking tests: protocol compliance, deadlock freedom and the
scheduler leads-to property — the Section 4.2 verification, rebuilt on the
library's explicit-state explorer."""

import pytest

from repro.core.scheduler import (
    NondetScheduler,
    RepairScheduler,
    StaticScheduler,
    ToggleScheduler,
)
from repro.core.shared import SharedModule
from repro.elastic.buffers import ElasticBuffer, ZeroBackwardLatencyBuffer
from repro.elastic.eemux import EarlyEvalMux
from repro.elastic.environment import NondetSink, NondetSource
from repro.elastic.functional import Func
from repro.netlist.graph import Netlist
from repro.verif.deadlock import assert_deadlock_free, find_deadlocks
from repro.verif.explore import StateExplorer, explore_or_raise
from repro.verif.leads_to import check_leads_to


def eb_under_nondet(make_buffer):
    net = Netlist("mc")
    net.add(NondetSource("src"))
    net.add(make_buffer())
    net.add(NondetSink("snk", can_kill=True))
    net.connect("src.o", net.nodes[_buf_name(net)].name + ".i", name="in")
    net.connect(_buf_name(net) + ".o", "snk.i", name="out")
    net.validate()
    return net


def _buf_name(net):
    for name, node in net.nodes.items():
        if node.kind in ("eb", "zbl_eb"):
            return name
    raise AssertionError


class TestElasticBufferCompliance:
    def test_standard_eb_protocol_and_deadlock(self):
        """Exhaustive: EB under all source/sink/kill behaviours satisfies
        Retry+/-, the invariant, and never deadlocks."""
        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        result = explore_or_raise(net, max_states=5000)
        assert result.n_states > 4
        assert_deadlock_free(result)

    def test_zbl_eb_protocol_and_deadlock(self):
        net = eb_under_nondet(lambda: ZeroBackwardLatencyBuffer("eb"))
        result = explore_or_raise(net, max_states=5000)
        assert_deadlock_free(result)

    def test_eb_chain_protocol(self):
        net = Netlist("mc")
        net.add(NondetSource("src"))
        net.add(ElasticBuffer("e0"))
        net.add(ZeroBackwardLatencyBuffer("e1"))
        net.add(NondetSink("snk", can_kill=True))
        net.connect("src.o", "e0.i", name="a")
        net.connect("e0.o", "e1.i", name="b")
        net.connect("e1.o", "snk.i", name="c")
        result = explore_or_raise(net, max_states=20000)
        assert_deadlock_free(result)


def shared_mux_mc_net(scheduler):
    """Nondet sources -> shared module -> EE mux -> nondet (non-killing)
    sink, with a nondet select source: the Section 4.2 composition."""
    net = Netlist("mc")
    net.add(NondetSource("a"))
    net.add(NondetSource("b"))
    net.add(_BinarySelectSource("sel"))
    net.add(SharedModule("sh", lambda x: x, scheduler, n_channels=2))
    net.add(EarlyEvalMux("mux", n_inputs=2))
    net.add(NondetSink("snk"))
    net.connect("a.o", "sh.i0", name="fin0")
    net.connect("b.o", "sh.i1", name="fin1")
    net.connect("sh.o0", "mux.i0", name="fout0")
    net.connect("sh.o1", "mux.i1", name="fout1")
    net.connect("sel.o", "mux.s", name="cs")
    net.connect("mux.o", "snk.i", name="out")
    net.validate()
    return net


class _BinarySelectSource(NondetSource):
    """Nondet source emitting 0/1 select tokens (choice picks idle/0/1)."""

    def choice_space(self):
        return 1 if self._offering else 3

    def pre_cycle(self):
        if not self._offering and self._choice in (1, 2):
            self._offering = True
            self._value = self._choice - 1

    def comb(self):
        changed = self.drive("o", "vp", self._offering)
        if self._offering:
            changed |= self.drive("o", "data", self._value)
        changed |= self.drive("o", "sm", False)
        return changed

    def reset(self):
        super().reset()
        self._value = 0

    def tick(self):
        ost = self.st("o")
        if ost.vp and not ost.sp:
            self._offering = False
            self.emitted += 1

    def snapshot(self):
        return (self._offering, self._value)

    def restore(self, state):
        self._offering, self._value = state


class TestSpeculationCompliance:
    @pytest.mark.parametrize("make_sched", [
        lambda: ToggleScheduler(2),
        lambda: RepairScheduler(2),
    ])
    def test_protocol_holds_for_compliant_schedulers(self, make_sched):
        net = shared_mux_mc_net(make_sched())
        result = explore_or_raise(net, max_states=60000)
        assert_deadlock_free(result)

    def test_nondet_scheduler_protocol_safe(self):
        """Even a fully nondeterministic scheduler keeps the protocol safe
        (safety does not depend on the prediction strategy)."""
        net = shared_mux_mc_net(NondetScheduler(2))
        result = explore_or_raise(net, max_states=120000)
        assert result.violations == []


class TestLeadsTo:
    def test_compliant_scheduler_is_starvation_free(self):
        net = shared_mux_mc_net(ToggleScheduler(2))
        result = StateExplorer(net, max_states=60000).explore()
        ok0, _ = check_leads_to(result, "fin0", "fout0")
        ok1, _ = check_leads_to(result, "fin1", "fout1")
        assert ok0 and ok1

    def test_repair_scheduler_is_starvation_free(self):
        net = shared_mux_mc_net(RepairScheduler(2))
        result = StateExplorer(net, max_states=60000).explore()
        ok0, _ = check_leads_to(result, "fin0", "fout0")
        ok1, _ = check_leads_to(result, "fin1", "fout1")
        assert ok0 and ok1

    def test_broken_scheduler_starves(self):
        """A static scheduler without repair violates leads-to: a token on
        the never-predicted channel waits forever — the failure mode the
        paper's constraint (1) excludes."""
        net = shared_mux_mc_net(StaticScheduler(2, favourite=0, repair=False))
        result = StateExplorer(net, max_states=60000).explore()
        ok1, lasso = check_leads_to(result, "fin1", "fout1")
        assert not ok1
        assert lasso


class TestDeadlockDetection:
    def test_manufactured_deadlock_found(self):
        """A join whose second input can never be fed deadlocks as soon as
        the first input commits a token."""
        net = Netlist("dead")
        net.add(NondetSource("a"))
        net.add(Func("join", lambda x, y: x, n_inputs=2))
        net.add(ElasticBuffer("loop_eb"))          # empty: never produces
        net.add(NondetSink("snk"))
        net.connect("a.o", "join.i0", name="ca")
        net.connect("loop_eb.o", "join.i1", name="cb")
        net.connect("join.o", "snk.i", name="out")
        # close the loop so validation passes but no token ever circulates
        net2 = Netlist("dead2")
        # simpler: feed loop_eb from a source that never offers
        net.add(_NeverSource("never"))
        net.connect("never.o", "loop_eb.i", name="cn")
        net.validate()
        result = StateExplorer(net, max_states=2000).explore()
        assert find_deadlocks(result)


class _NeverSource(NondetSource):
    def choice_space(self):
        return 1

    def pre_cycle(self):
        pass
