"""Model checking tests: protocol compliance, deadlock freedom and the
scheduler leads-to property — the Section 4.2 verification, rebuilt on the
library's explicit-state explorer."""

import pytest

from repro.core.scheduler import (
    NondetScheduler,
    RepairScheduler,
    StaticScheduler,
    ToggleScheduler,
)
from repro.core.shared import SharedModule
from repro.elastic.buffers import ElasticBuffer, ZeroBackwardLatencyBuffer
from repro.elastic.eemux import EarlyEvalMux
from repro.elastic.environment import NondetSink, NondetSource
from repro.elastic.functional import Func
from repro.netlist import patterns
from repro.netlist.graph import Netlist
from repro.verif.deadlock import assert_deadlock_free, find_deadlocks
from repro.verif.explore import StateExplorer, explore_or_raise
from repro.verif.leads_to import check_leads_to


def eb_under_nondet(make_buffer):
    net = Netlist("mc")
    net.add(NondetSource("src"))
    net.add(make_buffer())
    net.add(NondetSink("snk", can_kill=True))
    net.connect("src.o", net.nodes[_buf_name(net)].name + ".i", name="in")
    net.connect(_buf_name(net) + ".o", "snk.i", name="out")
    net.validate()
    return net


def _buf_name(net):
    for name, node in net.nodes.items():
        if node.kind in ("eb", "zbl_eb"):
            return name
    raise AssertionError


class TestElasticBufferCompliance:
    def test_standard_eb_protocol_and_deadlock(self):
        """Exhaustive: EB under all source/sink/kill behaviours satisfies
        Retry+/-, the invariant, and never deadlocks."""
        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        result = explore_or_raise(net, max_states=5000)
        assert result.n_states > 4
        assert_deadlock_free(result)

    def test_zbl_eb_protocol_and_deadlock(self):
        net = eb_under_nondet(lambda: ZeroBackwardLatencyBuffer("eb"))
        result = explore_or_raise(net, max_states=5000)
        assert_deadlock_free(result)

    def test_eb_chain_protocol(self):
        net = Netlist("mc")
        net.add(NondetSource("src"))
        net.add(ElasticBuffer("e0"))
        net.add(ZeroBackwardLatencyBuffer("e1"))
        net.add(NondetSink("snk", can_kill=True))
        net.connect("src.o", "e0.i", name="a")
        net.connect("e0.o", "e1.i", name="b")
        net.connect("e1.o", "snk.i", name="c")
        result = explore_or_raise(net, max_states=20000)
        assert_deadlock_free(result)


def shared_mux_mc_net(scheduler):
    """Nondet sources -> shared module -> EE mux -> nondet (non-killing)
    sink, with a nondet select source: the Section 4.2 composition (the
    shared :func:`repro.netlist.patterns.speculative_mc` builder)."""
    net, _names = patterns.speculative_mc(scheduler)
    return net


class TestSpeculationCompliance:
    @pytest.mark.parametrize("make_sched", [
        lambda: ToggleScheduler(2),
        lambda: RepairScheduler(2),
    ])
    def test_protocol_holds_for_compliant_schedulers(self, make_sched):
        net = shared_mux_mc_net(make_sched())
        result = explore_or_raise(net, max_states=60000)
        assert_deadlock_free(result)

    def test_nondet_scheduler_protocol_safe(self):
        """Even a fully nondeterministic scheduler keeps the protocol safe
        (safety does not depend on the prediction strategy)."""
        net = shared_mux_mc_net(NondetScheduler(2))
        result = explore_or_raise(net, max_states=120000)
        assert result.violations == []


class TestLeadsTo:
    def test_compliant_scheduler_is_starvation_free(self):
        net = shared_mux_mc_net(ToggleScheduler(2))
        result = StateExplorer(net, max_states=60000).explore()
        ok0, _ = check_leads_to(result, "fin0", "fout0")
        ok1, _ = check_leads_to(result, "fin1", "fout1")
        assert ok0 and ok1

    def test_repair_scheduler_is_starvation_free(self):
        net = shared_mux_mc_net(RepairScheduler(2))
        result = StateExplorer(net, max_states=60000).explore()
        ok0, _ = check_leads_to(result, "fin0", "fout0")
        ok1, _ = check_leads_to(result, "fin1", "fout1")
        assert ok0 and ok1

    def test_broken_scheduler_starves(self):
        """A static scheduler without repair violates leads-to: a token on
        the never-predicted channel waits forever — the failure mode the
        paper's constraint (1) excludes."""
        net = shared_mux_mc_net(StaticScheduler(2, favourite=0, repair=False))
        result = StateExplorer(net, max_states=60000).explore()
        ok1, lasso = check_leads_to(result, "fin1", "fout1")
        assert not ok1
        assert lasso


class TestDeadlockDetection:
    def test_manufactured_deadlock_found(self):
        """A join whose second input can never be fed deadlocks as soon as
        the first input commits a token."""
        net = Netlist("dead")
        net.add(NondetSource("a"))
        net.add(Func("join", lambda x, y: x, n_inputs=2))
        net.add(ElasticBuffer("loop_eb"))          # empty: never produces
        net.add(NondetSink("snk"))
        net.connect("a.o", "join.i0", name="ca")
        net.connect("loop_eb.o", "join.i1", name="cb")
        net.connect("join.o", "snk.i", name="out")
        # close the loop so validation passes but no token ever circulates
        net2 = Netlist("dead2")
        # simpler: feed loop_eb from a source that never offers
        net.add(_NeverSource("never"))
        net.connect("never.o", "loop_eb.i", name="cn")
        net.validate()
        result = StateExplorer(net, max_states=2000).explore()
        assert find_deadlocks(result)


class _NeverSource(NondetSource):
    def choice_space(self):
        return 1

    def pre_cycle(self):
        pass


class TestBreadthFirstOrder:
    """Regression for the PR 5 search-order fix: the docstring always said
    BFS but the frontier popped LIFO (depth-first), so counterexamples
    could be arbitrarily long."""

    @staticmethod
    def _discovery_depths(result):
        """Depth of each state along its discovery transition (transitions
        are recorded in expansion order, so the first one reaching a state
        is the discovering one)."""
        depth = [None] * result.n_states
        depth[0] = 0
        for t in result.transitions:
            if depth[t.target] is None:
                depth[t.target] = depth[t.source] + 1
        return depth

    def test_states_indexed_in_breadth_first_layers(self):
        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        result = StateExplorer(net, max_states=5000).explore()
        depths = self._discovery_depths(result)
        assert None not in depths
        # Breadth-first <=> discovery index order never decreases in depth
        # (a LIFO frontier interleaves deep and shallow discoveries).
        assert depths == sorted(depths)

    def test_shortest_path_matches_bfs_depth(self):
        net = eb_under_nondet(lambda: ZeroBackwardLatencyBuffer("eb"))
        result = StateExplorer(net, max_states=5000).explore()
        depths = self._discovery_depths(result)
        for index in (1, result.n_states // 2, result.n_states - 1):
            path = result.shortest_path_to(index)
            assert path[0] == 0 and path[-1] == index
            assert len(path) == depths[index] + 1


class TestAdjacencyIndex:
    def test_successors_predecessors_match_linear_scan(self):
        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        result = StateExplorer(net, max_states=5000).explore()
        for index in range(result.n_states):
            assert result.successors(index) == [
                t for t in result.transitions if t.source == index
            ]
            assert result.predecessors(index) == [
                t for t in result.transitions if t.target == index
            ]

    def test_index_rebuilds_after_graph_growth(self):
        from repro.verif.explore import ExplorationResult, Transition

        result = ExplorationResult(states=[(None, None), (None, None)])
        result.transitions.append(Transition(0, 1, {}, {}, True))
        assert len(result.successors(0)) == 1
        result.transitions.append(Transition(0, 1, {}, {}, False))
        assert len(result.successors(0)) == 2      # lazily rebuilt

    def test_signals_decode(self):
        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        result = StateExplorer(net, max_states=5000).explore()
        assert result.signals_of(0) is None        # initial state
        decoded = result.signals_of(1)
        assert set(decoded) == set(net.channels)
        for quad in decoded.values():
            assert len(quad) == 4
            assert all(isinstance(b, bool) for b in quad)


class TestMaxStatesCap:
    CAP = 20

    def _net(self):
        return eb_under_nondet(lambda: ElasticBuffer("eb"))

    def test_cap_keeps_transitions_between_indexed_states(self):
        """Hitting the cap stops *indexing* new states but not expansion:
        every transition between already-indexed states must still be
        recorded, exactly as in the uncapped run's first CAP states."""
        full = StateExplorer(self._net(), max_states=5000).explore()
        capped = StateExplorer(self._net(), max_states=self.CAP).explore()
        assert capped.complete is False
        assert capped.n_states == self.CAP
        assert all(t.target < self.CAP for t in capped.transitions)
        def edges(result):
            return sorted(
                (t.source, t.target, tuple(sorted(t.choices.items())))
                for t in result.transitions
                if t.source < self.CAP and t.target < self.CAP
            )
        assert edges(capped) == edges(full)
        # The cap was genuinely hit after further expansions: some indexed
        # state past the first one still recorded outgoing transitions.
        assert max(t.source for t in capped.transitions) > 0

    def test_explore_or_raise_propagates_incomplete(self):
        import pytest as _pytest
        from repro.errors import VerificationError

        with _pytest.raises(VerificationError, match="exceeded cap"):
            explore_or_raise(self._net(), max_states=self.CAP)

    def test_capped_graph_identical_scalar_vs_batched(self):
        scalar = StateExplorer(self._net(), max_states=self.CAP).explore()
        batched = StateExplorer(self._net(), max_states=self.CAP,
                                lanes=4).explore()
        assert scalar.states == batched.states
        assert scalar.transitions == batched.transitions
        assert scalar.complete == batched.complete is False


class TestStateCodec:
    def test_equal_states_equal_keys(self):
        from repro.verif.encoding import StateCodec, pack_signals

        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        codec = StateCodec(net)
        net.reset()
        snap_a = net.snapshot()
        snap_b = net.snapshot()
        sig = pack_signals(
            {name: (True, False, False, False) for name in net.channels},
            codec.channel_names,
        )
        assert codec.encode(snap_a, sig) == codec.encode(snap_b, sig)
        assert codec.encode(snap_a, sig) != codec.encode(snap_a, None)

    def test_pack_unpack_roundtrip(self):
        from repro.verif.encoding import pack_signals, unpack_signals

        names = ["x", "y", "z"]
        signals = {"x": (True, False, True, False),
                   "y": (False, False, False, True),
                   "z": (True, True, False, False)}
        assert unpack_signals(pack_signals(signals, names), names) == signals

    def test_unencodable_snapshot_falls_back(self):
        from repro.verif.encoding import StateCodec

        net = eb_under_nondet(lambda: ElasticBuffer("eb"))
        codec = StateCodec(net)
        weird = (("node", (object(),)),)        # not marshal-serializable
        assert codec.encode(weird, None) is None
