"""Perf smoke: the lane-batch engine must actually be faster.

``benchmarks/bench_sweep.py`` records the full trajectory numbers (and
asserts the >= 3x acceptance bar); this tier-1 smoke is a cheap guard
against *regressions* of the recorded rates — e.g. the batch engine
silently degrading to per-lane scalar evaluation — using a floor far
enough below the recorded speedup (~3.3x on the reference 1-CPU runner)
to stay robust on noisy or slower CI hardware.  Set
``REPRO_SKIP_PERF_SMOKE=1`` to skip on machines where wall-clock
assertions are meaningless.
"""

import json
import os

import pytest

from repro.perf.presets import fig6_lane_spec
from repro.perf.sweep import run_sweep

#: minimum acceptable quick-measurement speedup (recorded rate is ~3.3x).
FLOOR = 1.8

#: fraction of the recorded benchmark speedup the quick measurement must
#: reach when a recorded rate is available for this checkout.
RECORDED_FRACTION = 0.55

_RESULTS = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "results",
    "BENCH_sweep.json",
)


def _recorded_lane_speedup():
    try:
        with open(_RESULTS) as fh:
            return json.load(fh)["lane_batching"]["speedup"]
    except (OSError, KeyError, ValueError):
        return None


def _measure_speedup():
    spec = fig6_lane_spec(cycles=250, warmup=50)
    serial = run_sweep(spec, n_workers=1, engine="worklist")
    batched = run_sweep(spec, n_workers=1, lanes=8)
    # Correctness first — a fast wrong answer is not a speedup.
    for scalar_row, batched_row in zip(serial.rows, batched.rows):
        assert dict(scalar_row, engine="batch") == batched_row
    return serial.elapsed_seconds / batched.elapsed_seconds


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_lane_batching_beats_serial_scalar():
    threshold = FLOOR
    recorded = _recorded_lane_speedup()
    if recorded is not None and recorded >= 3.0:
        threshold = max(threshold, RECORDED_FRACTION * recorded)
    speedup = _measure_speedup()
    if speedup < threshold:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (e.g. batch silently degrading to per-lane scalar
        # evaluation) fails both measurements.
        speedup = max(speedup, _measure_speedup())
    assert speedup >= threshold, (
        f"8-lane batch speedup regressed: measured {speedup:.2f}x, "
        f"required {threshold:.2f}x (recorded benchmark: {recorded})"
    )
