"""Perf smoke: the recorded engine-level speedups must not regress.

``benchmarks/bench_sweep.py`` and ``benchmarks/bench_incremental.py``
record the full trajectory numbers (and assert the >= 3x acceptance
bars); these tier-1 smokes are cheap guards against *regressions* of the
recorded rates — e.g. the batch engine silently degrading to per-lane
scalar evaluation, or incremental edit patching silently falling back to
full rebuilds — using floors far enough below the recorded speedups
(~3.3x lane batching, ~3.2-3.7x incremental, both on the reference 1-CPU
runner) to stay robust on noisy or slower CI hardware.  Set
``REPRO_SKIP_PERF_SMOKE=1`` to skip on machines where wall-clock
assertions are meaningless.
"""

import json
import os

import pytest

from repro.perf.presets import fig6_lane_spec
from repro.perf.sweep import run_sweep

#: minimum acceptable quick-measurement speedup (recorded rate is ~3.3x).
FLOOR = 1.8

#: fraction of the recorded benchmark speedup the quick measurement must
#: reach when a recorded rate is available for this checkout.
RECORDED_FRACTION = 0.55

_RESULTS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "results",
)
_RESULTS = os.path.join(_RESULTS_DIR, "BENCH_sweep.json")


def _recorded(path, *keys):
    try:
        with open(path) as fh:
            value = json.load(fh)
        for key in keys:
            value = value[key]
        return value
    except (OSError, KeyError, ValueError):
        return None


def _recorded_lane_speedup():
    return _recorded(_RESULTS, "lane_batching", "speedup")


def _measure_speedup():
    spec = fig6_lane_spec(cycles=250, warmup=50)
    serial = run_sweep(spec, n_workers=1, engine="worklist")
    batched = run_sweep(spec, n_workers=1, lanes=8)
    # Correctness first — a fast wrong answer is not a speedup.
    for scalar_row, batched_row in zip(serial.rows, batched.rows):
        assert dict(scalar_row, engine="batch") == batched_row
    return serial.elapsed_seconds / batched.elapsed_seconds


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_lane_batching_beats_serial_scalar():
    threshold = FLOOR
    recorded = _recorded_lane_speedup()
    if recorded is not None and recorded >= 3.0:
        threshold = max(threshold, RECORDED_FRACTION * recorded)
    speedup = _measure_speedup()
    if speedup < threshold:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (e.g. batch silently degrading to per-lane scalar
        # evaluation) fails both measurements.
        speedup = max(speedup, _measure_speedup())
    assert speedup >= threshold, (
        f"8-lane batch speedup regressed: measured {speedup:.2f}x, "
        f"required {threshold:.2f}x (recorded benchmark: {recorded})"
    )


# -- incremental transform-loop smoke (ISSUE 4) --------------------------------

#: minimum acceptable quick-measurement incremental-loop speedup
#: (recorded rate is ~3.7x).
INCREMENTAL_FLOOR = 1.6

#: fraction of the recorded bench speedup the quick loop must reach (the
#: quick loop's 40 steps stay on smaller netlists than the recorded
#: 200-step bench, so its intrinsic ratio runs a little lower).
INCREMENTAL_RECORDED_FRACTION = 0.45


def _measure_incremental_speedup(steps=40, cycles=6, warmup=2):
    """A shrunk version of ``benchmarks/bench_incremental.py``: the same
    transform-simulate-measure loop over the fig6b speculative design,
    warm-patched vs clone-and-rebuild, with score-parity asserted."""
    import random
    import time

    from repro.errors import TransformError
    from repro.netlist.varlat import variable_latency_speculative
    from repro.perf.throughput import measure_throughput
    from repro.transform.session import Session

    def design():
        return variable_latency_speculative(seed=3, pure_stream=True)[0]

    rng = random.Random(9)
    commands = []
    scratch = Session(design())
    while len(commands) < steps:
        channels = sorted(scratch.netlist.channels)
        roll = rng.random()
        if roll < 0.55:
            command = f"insert_bubble {rng.choice(channels)}"
        elif roll < 0.75:
            command = f"insert_zbl {rng.choice(channels)}"
        elif roll < 0.9:
            command = "undo"
        else:
            command = "redo"
        try:
            scratch.run_command(command)
        except TransformError:
            continue
        commands.append(command)

    warm_session = Session(design())
    warm_session.simulator()
    start = time.perf_counter()
    warm_scores = []
    for command in commands:
        warm_session.run_command(command)
        warm_scores.append(
            warm_session.measure("out", cycles=cycles, warmup=warmup).transfers
        )
    warm_seconds = time.perf_counter() - start

    cold_session = Session(design())
    history = []
    start = time.perf_counter()
    cold_scores = []
    for command in commands:
        # The pre-ISSUE-4 cost model, as in benchmarks/bench_incremental.py:
        # a whole-netlist deep clone per transform (the old Session's undo
        # history) plus the rebuild measurement path (per-step clone +
        # fresh Simulator).
        history.append(cold_session.netlist.clone())
        if len(history) > 64:
            history.pop(0)
        cold_session.run_command(command)
        cold_scores.append(
            measure_throughput(cold_session.netlist, "out",
                               cycles=cycles, warmup=warmup).transfers
        )
    cold_seconds = time.perf_counter() - start
    # Correctness first — a fast wrong answer is not a speedup.
    assert warm_scores == cold_scores
    return cold_seconds / warm_seconds


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_incremental_patching_beats_rebuild():
    threshold = INCREMENTAL_FLOOR
    recorded = _recorded(
        os.path.join(_RESULTS_DIR, "BENCH_incremental.json"),
        "incremental_loop", "speedup",
    )
    if recorded is not None and recorded >= 3.0:
        threshold = max(threshold,
                        INCREMENTAL_RECORDED_FRACTION * recorded)
    speedup = _measure_incremental_speedup()
    if speedup < threshold:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (e.g. apply_edit silently rebuilding from scratch, or
        # reuse_simulator cloning after all) fails both measurements.
        speedup = max(speedup, _measure_incremental_speedup())
    assert speedup >= threshold, (
        f"incremental transform-loop speedup regressed: measured "
        f"{speedup:.2f}x, required {threshold:.2f}x "
        f"(recorded benchmark: {recorded})"
    )


# -- lane-batched exploration smoke (ISSUE 5) ----------------------------------

#: minimum acceptable quick-measurement exploration speedup (the recorded
#: benchmark rate is ~2.3x on the reference runner; the quick measurement
#: runs a shallower design capped at 1200 states, so its intrinsic ratio
#: is a little lower and noisier).
EXPLORE_FLOOR = 1.25

#: fraction of the recorded bench speedup the quick measurement must reach.
EXPLORE_RECORDED_FRACTION = 0.55


def _measure_explore_speedup():
    """A shrunk version of ``benchmarks/bench_explore.py``: the speculative
    composition with a 2-stage ZBL chain and killing sink, explored to a
    1200-state cap, scalar vs 16-lane — with bit-identity asserted."""
    import time

    from repro.core.scheduler import ToggleScheduler
    from repro.netlist import patterns
    from repro.verif.explore import StateExplorer

    def design():
        return patterns.speculative_mc(
            ToggleScheduler(2), n_zbl=2, can_kill_sink=True)[0]

    start = time.perf_counter()
    scalar = StateExplorer(design(), max_states=1200).explore()
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = StateExplorer(design(), max_states=1200, lanes=16).explore()
    batched_seconds = time.perf_counter() - start
    # Correctness first — a fast wrong answer is not a speedup.
    assert scalar.states == batched.states
    assert scalar.transitions == batched.transitions
    assert scalar.violations == batched.violations
    assert scalar.complete == batched.complete
    return scalar_seconds / batched_seconds


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_lane_batched_exploration_beats_scalar():
    threshold = EXPLORE_FLOOR
    recorded = _recorded(
        os.path.join(_RESULTS_DIR, "BENCH_explore.json"),
        "explore_batching", "speedup",
    )
    if recorded is not None and recorded >= 2.0:
        threshold = max(threshold, EXPLORE_RECORDED_FRACTION * recorded)
    speedup = _measure_explore_speedup()
    if speedup < threshold:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (e.g. the frontier engine silently degrading to one
        # scalar fix-point per transition) fails both measurements.
        speedup = max(speedup, _measure_explore_speedup())
    assert speedup >= threshold, (
        f"lane-batched exploration speedup regressed: measured "
        f"{speedup:.2f}x, required {threshold:.2f}x "
        f"(recorded benchmark: {recorded})"
    )

# -- codegen engine smoke (ISSUE 9) --------------------------------------------

#: minimum acceptable quick-measurement codegen-vs-worklist speedup on the
#: deep pipeline (the ISSUE's acceptance bar is 5x on the recorded bench;
#: the recorded rate is ~9.8x on the reference runner, and the quick
#: measurement runs fewer cycles so elaboration amortizes less).
CODEGEN_FLOOR = 3.0

#: fraction of the recorded bench speedup the quick measurement must reach.
CODEGEN_RECORDED_FRACTION = 0.45


def _measure_codegen_speedup(cycles=300):
    """A shrunk version of ``benchmarks/bench_engine.py``'s head-to-head:
    the 12-stage deep pipeline, worklist vs codegen, best of 3 — with
    bit-identity of the sink streams asserted."""
    import time

    from repro.netlist import patterns
    from repro.sim.engine import Simulator

    def rate(engine):
        best = float("inf")
        sink_values = None
        for _ in range(3):
            net = patterns.deep_pipeline(12, source_values=list(range(cycles)))
            sim = Simulator(net, engine=engine)
            start = time.perf_counter()
            sim.run(cycles)
            best = min(best, time.perf_counter() - start)
            sink_values = net.nodes["snk"].values
        return cycles / best, sink_values

    worklist_rate, worklist_sink = rate("worklist")
    codegen_rate, codegen_sink = rate("codegen")
    # Correctness first — a fast wrong answer is not a speedup.
    assert codegen_sink == worklist_sink
    return codegen_rate / worklist_rate


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_codegen_beats_worklist():
    threshold = CODEGEN_FLOOR
    recorded = _recorded(
        os.path.join(_RESULTS_DIR, "BENCH_engine.json"),
        "codegen_speedup", "pipeline12",
    )
    if recorded is not None and recorded >= 5.0:
        threshold = max(threshold, CODEGEN_RECORDED_FRACTION * recorded)
    speedup = _measure_codegen_speedup()
    if speedup < threshold:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (e.g. elaboration silently demoting the whole pipeline
        # to the deferred fix-point loop) fails both measurements.
        speedup = max(speedup, _measure_codegen_speedup())
    assert speedup >= threshold, (
        f"codegen engine speedup regressed: measured {speedup:.2f}x, "
        f"required {threshold:.2f}x (recorded benchmark: {recorded})"
    )


# -- serve result-cache smoke (ISSUE 8) ----------------------------------------

#: minimum acceptable quick-measurement cache-hit speedup.  The ISSUE's
#: acceptance bar is 5x; the recorded benchmark rate is ~2900x (a verified
#: file read vs a 24-config sweep), so even a heavily loaded runner clears
#: this with orders of magnitude to spare.
SERVE_FLOOR = 5.0

#: fraction of the recorded bench speedup the quick measurement must
#: reach.  The quick sweep runs a shrunk grid (cycles=150) so its cold
#: side is ~20x cheaper than the recorded bench's — the hit latency stays
#: the same, which drops the intrinsic ratio accordingly.
SERVE_RECORDED_FRACTION = 0.005


def _measure_serve_cache_speedup():
    """A shrunk version of ``benchmarks/bench_serve.py``: one in-process
    job server, a cold fig6 sweep submit vs its cache-hit resubmit — with
    byte-identity of the payloads asserted."""
    import asyncio
    import tempfile
    import threading
    import time

    from repro.serve.client import ServeClient
    from repro.serve.server import JobServer

    spec = {"kind": "sweep", "grid": "fig6", "cycles": 150}
    with tempfile.TemporaryDirectory() as root:
        server = JobServer(root, retries=0)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(server.run(ready=ready)), daemon=True)
        thread.start()
        assert ready.wait(10)
        client = ServeClient(root=root, timeout=120)
        try:
            start = time.perf_counter()
            cold = client.submit(spec)
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = client.submit(spec)
            warm_seconds = time.perf_counter() - start
        finally:
            client.shutdown()
            thread.join(30)
    # Correctness first — a fast wrong answer is not a cache.
    assert cold["type"] == warm["type"] == "result"
    assert not cold.get("cached") and warm["cached"]
    assert json.dumps(cold["payload"], sort_keys=True) == \
        json.dumps(warm["payload"], sort_keys=True)
    return cold_seconds / warm_seconds


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_serve_cache_hit_beats_cold_run():
    threshold = SERVE_FLOOR
    recorded = _recorded(
        os.path.join(_RESULTS_DIR, "BENCH_serve.json"),
        "serve_cache", "speedup",
    )
    if recorded is not None and recorded >= 100.0:
        threshold = max(threshold, SERVE_RECORDED_FRACTION * recorded)
    speedup = _measure_serve_cache_speedup()
    if speedup < threshold:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (e.g. the cache silently missing on every read and
        # re-simulating) fails both measurements.
        speedup = max(speedup, _measure_serve_cache_speedup())
    assert speedup >= threshold, (
        f"serve cache-hit speedup regressed: measured {speedup:.2f}x, "
        f"required {threshold:.2f}x (recorded benchmark: {recorded})"
    )


# -- chaos wrap-overhead smoke (ISSUE 10) --------------------------------------

#: ceiling on the quick per-cycle slowdown of a chaos-wrapped run (the
#: recorded bench overhead is ~1.2-1.6x; a saboteur knocking the engine
#: off its incremental path shows up as 10x+).
CHAOS_CEILING = 3.5

#: slack factor over the recorded bench overhead when one is available
#: (the guard is inverted — measured overhead must stay *below* the bar).
CHAOS_RECORDED_SLACK = 2.5


def _measure_chaos_overhead(cycles=600, repeats=2):
    import time

    from repro.chaos import ChaosPlan, wrap
    from repro.designs import build_design
    from repro.sim.engine import Simulator

    plan = ChaosPlan.seeded(1, list(build_design("fig6b").channels))

    def run(wrapped):
        best = None
        for _ in range(repeats):
            net = build_design("fig6b")
            if wrapped:
                wrap(net, plan)
            sim = Simulator(net)
            start = time.perf_counter()
            sim.run(cycles)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    return run(True) / run(False)


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="perf smoke disabled via REPRO_SKIP_PERF_SMOKE",
)
def test_chaos_wrap_overhead_stays_bounded():
    ceiling = CHAOS_CEILING
    recorded = _recorded(
        os.path.join(_RESULTS_DIR, "BENCH_chaos.json"), "wrap_overhead",
    )
    if recorded is not None and recorded >= 1.0:
        ceiling = max(ceiling, CHAOS_RECORDED_SLACK * recorded)
    overhead = _measure_chaos_overhead()
    if overhead > ceiling:
        # One retry damps scheduler-noise flakes on loaded runners; a real
        # regression (saboteurs forcing full re-evaluation every cycle)
        # fails both measurements.
        overhead = min(overhead, _measure_chaos_overhead())
    assert overhead <= ceiling, (
        f"chaos wrap overhead regressed: measured {overhead:.2f}x per "
        f"cycle, ceiling {ceiling:.2f}x (recorded benchmark: {recorded})"
    )
