"""Unit tests for the eager fork (per-branch completion + kill counters)."""

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.environment import KillerSink, ListSource, Sink
from repro.elastic.fork import EagerFork
from repro.netlist.graph import Netlist

from helpers import run


def fork_net(values, n=2, sink_kinds=None, stall_rates=None, seed=0):
    net = Netlist("t")
    net.add(EagerFork("fork", n_outputs=n))
    net.add(ListSource("src", list(values)))
    net.connect("src.o", "fork.i", name="in")
    sink_kinds = sink_kinds or ["sink"] * n
    stall_rates = stall_rates or [0.0] * n
    for k in range(n):
        if sink_kinds[k] == "sink":
            net.add(Sink(f"s{k}", stall_rate=stall_rates[k], seed=seed + k))
        else:
            net.add(KillerSink(f"s{k}", kill_rate=stall_rates[k], seed=seed + k))
        net.connect(f"fork.o{k}", f"s{k}.i", name=f"out{k}")
    net.validate()
    return net


class TestBasics:
    def test_rejects_zero_outputs(self):
        with pytest.raises(ValueError):
            EagerFork("f", n_outputs=0)

    def test_copies_to_all_branches(self):
        net = fork_net([1, 2, 3], n=3)
        run(net, 6)
        for k in range(3):
            assert net.nodes[f"s{k}"].values == [1, 2, 3]

    def test_zero_latency_passthrough(self):
        net = fork_net([5], n=2)
        run(net, 3)
        assert net.nodes["s0"].received == [(0, 5)]
        assert net.nodes["s1"].received == [(0, 5)]


class TestEagerness:
    def test_fast_branch_not_blocked_by_slow_branch(self):
        """Eager fork: branch 0 takes its copy while branch 1 stalls; the
        token is consumed only when both are served."""
        net = fork_net([1, 2], n=2, stall_rates=[0.0, 1.0])
        run(net, 6)
        assert net.nodes["s0"].values == [1]      # got its copy of token 1
        assert net.nodes["s1"].values == []       # still stalling
        assert net.nodes["src"].emitted == 0      # token 1 not fully consumed

    def test_duplicate_free_delivery_under_stalls(self):
        values = list(range(15))
        net = fork_net(values, n=2, stall_rates=[0.6, 0.3], seed=9)
        run(net, 150)
        assert net.nodes["s0"].values == values
        assert net.nodes["s1"].values == values


class TestKills:
    def test_branch_kill_absorbed_locally(self):
        """A kill on one branch destroys only that branch's copy."""
        net = fork_net([1, 2, 3], n=2, sink_kinds=["killer", "sink"],
                       stall_rates=[1.0, 0.0])
        run(net, 10)
        assert net.nodes["s0"].values == []        # killed copies
        assert net.nodes["s1"].values == [1, 2, 3]  # untouched branch

    def test_kill_rate_mix(self):
        values = list(range(20))
        net = fork_net(values, n=2, sink_kinds=["killer", "sink"],
                       stall_rates=[0.4, 0.0], seed=2)
        run(net, 120)
        survivors = net.nodes["s0"].values
        assert net.nodes["s1"].values == values
        # Branch-0 survivors are an ordered subsequence of the input.
        it = iter(values)
        assert all(any(v == w for w in it) for v in survivors)

    def test_three_way_fork_with_one_killer(self):
        values = list(range(10))
        net = fork_net(values, n=3, sink_kinds=["sink", "killer", "sink"],
                       stall_rates=[0.0, 1.0, 0.0])
        run(net, 40)
        assert net.nodes["s0"].values == values
        assert net.nodes["s1"].values == []
        assert net.nodes["s2"].values == values


class TestStateRoundtrip:
    def test_snapshot_restore(self):
        fork = EagerFork("f", n_outputs=2)
        fork.reset()
        snap = fork.snapshot()
        fork._done[0] = True
        fork._pk[1] = 2
        fork.restore(snap)
        assert fork._done == [False, False]
        assert fork._pk == [0, 0]
