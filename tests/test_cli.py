"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "A - C - E F F" in " ".join(out.split())
        assert "mispredictions=2" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "--cycles", "300"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out and "fig1d" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--cycles", "400"]) == 0
        out = capsys.readouterr().out
        assert "effective improvement" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--cycles", "300", "--error-rate", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "fig7b" in out

    def test_export(self, tmp_path, capsys):
        assert main(["export", str(tmp_path), "--design", "fig1d"]) == 0
        assert (tmp_path / "fig1d.v").exists()
        assert (tmp_path / "fig1d.smv").exists()
        assert (tmp_path / "fig1d.dot").exists()

    def test_export_fig6b(self, tmp_path):
        assert main(["export", str(tmp_path), "--design", "fig6b"]) == 0
        assert (tmp_path / "fig6b.v").exists()

    @pytest.mark.slow
    def test_verify(self, capsys):
        assert main(["verify", "--max-states", "60000"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "starves as predicted" in out

    @pytest.mark.slow
    def test_verify_lane_batched(self, capsys):
        assert main(["verify", "--max-states", "60000", "--lanes", "8"]) == 0
        out = capsys.readouterr().out
        assert "lane-batched x8" in out
        assert "OK" in out
        assert "starves as predicted" in out
        assert "FAIL" not in out

    def test_verify_lanes_reject_scalar_engine(self, capsys):
        assert main(["--engine", "naive", "verify", "--lanes", "4"]) == 2
        err = capsys.readouterr().err
        assert "lane-batched" in err

    def test_sweep_serial(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        assert main(["sweep", "--grid", "fig1", "--cycles", "60",
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "fig1[design=fig1d]" in out
        assert "4 configurations" in out
        assert out_json.exists()
        import json

        payload = json.loads(out_json.read_text())
        assert payload["n_configs"] == 4
        assert [c["throughput_source"] for c in payload["configs"]] == \
            ["marked-graph"] * 3 + ["simulation"]

    def test_sweep_workers_engine_flag(self, capsys):
        """--engine must reach the spawn workers (they don't inherit the
        parent's set_default_engine)."""
        from repro.sim.engine import get_default_engine

        assert main(["--engine", "naive", "sweep", "--grid", "fig1",
                     "--cycles", "40", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "(engine=naive)" in out
        assert get_default_engine() == "worklist"

    def test_explore_script(self, tmp_path, capsys):
        script = tmp_path / "explore.txt"
        script.write_text(
            "# the paper's recipe, with a detour\n"
            "insert_bubble mux_f\n"
            "undo\n"
            "shannon mux F\n"
            "early_eval mux\n"
            "share F_c0 F_c1 --scheduler=toggle\n"
        )
        assert main(["explore", str(script), "--design", "fig1a",
                     "--measure", "mux_f", "--cycles", "120",
                     "--warmup", "20"]) == 0
        out = capsys.readouterr().out
        assert "insert_bubble mux_f" in out and "theta=" in out
        assert "0 simulator rebuilds" in out

    def test_explore_without_measure(self, tmp_path, capsys):
        script = tmp_path / "explore.txt"
        script.write_text("insert_bubble mux_f\nundo\n")
        assert main(["explore", str(script), "--design", "fig1a"]) == 0
        out = capsys.readouterr().out
        assert "2 steps" in out

    def test_profile(self, capsys):
        assert main(["profile", "--design", "fig1d", "--cycles", "50"]) == 0
        out = capsys.readouterr().out
        assert "engine=worklist" in out
        assert "comb() calls" in out

    def test_engine_flag_selects_naive(self, capsys):
        from repro.sim.engine import get_default_engine

        assert main(["--engine", "naive", "profile", "--cycles", "20"]) == 0
        out = capsys.readouterr().out
        assert "engine=naive" in out
        assert "sweeps per cycle" in out
        # the flag must not leak into the process-wide default
        assert get_default_engine() == "worklist"

    def test_engine_flag_table1_unchanged(self, capsys):
        """The naive engine reproduces Table 1 identically."""
        assert main(["--engine", "naive", "table1"]) == 0
        out = capsys.readouterr().out
        assert "A - C - E F F" in " ".join(out.split())
        assert "mispredictions=2" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
