"""Transfer-equivalence tests: every correct-by-construction transformation
must preserve the output transfer streams (Section 3.1 / Section 4's
"functional equivalence is preserved ... regardless the prediction
strategy").  Property-based over random select streams, stall patterns and
scheduler choices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    LastGrantScheduler,
    PrimaryScheduler,
    RandomScheduler,
    RepairScheduler,
    RoundRobinScheduler,
    StaticScheduler,
    ToggleScheduler,
    TwoBitScheduler,
)
from repro.core.speculation import speculate
from repro.netlist import patterns
from repro.sim.engine import Simulator
from repro.sim.stats import TransferLog
from repro.transform.bubbles import insert_bubble, insert_zbl_buffer
from repro.verif.equivalence import assert_transfer_equivalent, transfer_streams


def loop_stream(net, channel, cycles=200):
    log = TransferLog([channel])
    Simulator(net, observers=[log]).run(cycles)
    return log.values(channel)


def make_sel_fn(bits):
    return lambda generation: bits[generation % len(bits)]


SEL_BITS = st.lists(st.integers(0, 1), min_size=1, max_size=12)


class TestFig1VariantsEquivalent:
    """All four Figure 1 variants must produce the same loop stream."""

    @given(bits=SEL_BITS)
    @settings(max_examples=20, deadline=None)
    def test_bubble_insertion_preserves_stream(self, bits):
        sel = make_sel_fn(bits)
        net_a, names_a = patterns.fig1a(sel)
        net_b, names_b = patterns.fig1b(sel)
        sa = loop_stream(net_a, names_a["ebin"], 160)
        sb = loop_stream(net_b, names_b["ebin"], 160)
        n = min(len(sa), len(sb))
        assert n >= 20
        assert sa[:n] == sb[:n]

    @given(bits=SEL_BITS)
    @settings(max_examples=20, deadline=None)
    def test_shannon_preserves_stream(self, bits):
        sel = make_sel_fn(bits)
        net_a, names_a = patterns.fig1a(sel)
        net_c, names_c = patterns.fig1c(sel)
        sa = loop_stream(net_a, names_a["ebin"], 160)
        sc = loop_stream(net_c, names_c["ebin"], 160)
        n = min(len(sa), len(sc))
        assert n >= 20
        assert sa[:n] == sc[:n]

    @given(bits=SEL_BITS)
    @settings(max_examples=20, deadline=None)
    def test_speculation_preserves_stream(self, bits):
        sel = make_sel_fn(bits)
        net_a, names_a = patterns.fig1a(sel)
        net_d, names_d = patterns.fig1d(sel)
        sa = loop_stream(net_a, names_a["ebin"], 200)
        sd = loop_stream(net_d, names_d["ebin"], 200)
        n = min(len(sa), len(sd))
        assert n >= 20
        assert sa[:n] == sd[:n]


SCHEDULERS = [
    lambda: ToggleScheduler(2),
    lambda: RoundRobinScheduler(2),
    lambda: RepairScheduler(2),
    lambda: StaticScheduler(2, favourite=0),
    lambda: StaticScheduler(2, favourite=1),
    lambda: PrimaryScheduler(2, primary=0),
    lambda: LastGrantScheduler(2),
    lambda: TwoBitScheduler(),
    lambda: RandomScheduler(2, seed=13),
]


class TestPredictionStrategyIrrelevantForFunction:
    """The paper's central guarantee: the speculative design is equivalent
    to the original *regardless of the prediction strategy*."""

    @pytest.mark.parametrize("make_sched", SCHEDULERS)
    def test_any_scheduler_same_stream(self, make_sched):
        sel = make_sel_fn([0, 1, 1, 0, 1, 0, 0, 1])
        net_a, names_a = patterns.fig1a(sel)
        net_d, names_d = patterns.fig1d(sel, scheduler=make_sched())
        sa = loop_stream(net_a, names_a["ebin"], 240)
        sd = loop_stream(net_d, names_d["ebin"], 240)
        n = min(len(sa), len(sd))
        assert n >= 30
        assert sa[:n] == sd[:n]

    @pytest.mark.parametrize("buffers", ["standard", "zbl"])
    def test_buffered_speculation_same_stream(self, buffers):
        """Section 4.1's general case: EBs between shared module and mux."""
        sel = make_sel_fn([1, 0, 0, 1, 1])
        net_a, names_a = patterns.fig1a(sel)
        net_d, names_d = patterns.fig1d(sel, buffers=buffers)
        sa = loop_stream(net_a, names_a["ebin"], 300)
        sd = loop_stream(net_d, names_d["ebin"], 300)
        n = min(len(sa), len(sd))
        assert n >= 20
        assert sa[:n] == sd[:n]


class TestPipelineTransformsEquivalent:
    @given(stalls=st.floats(0.0, 0.8), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_bubble_in_open_pipeline(self, stalls, seed):
        values = list(range(40))
        base = patterns.pipeline_with_func(values, lambda x: x + 7,
                                           stall_rate=stalls, seed=seed)
        bubbled = patterns.pipeline_with_func(values, lambda x: x + 7,
                                              stall_rate=stalls, seed=seed)
        insert_bubble(bubbled, "mid0")
        assert_transfer_equivalent(base, bubbled, [("out", "out")],
                                   cycles=300, min_transfers=30)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_zbl_in_open_pipeline(self, seed):
        values = list(range(30))
        base = patterns.pipeline_with_func(values, lambda x: x * 2,
                                           stall_rate=0.3, seed=seed)
        zbl = patterns.pipeline_with_func(values, lambda x: x * 2,
                                          stall_rate=0.3, seed=seed)
        insert_zbl_buffer(zbl, "mid1")
        assert_transfer_equivalent(base, zbl, [("out", "out")],
                                   cycles=250, min_transfers=25)


class TestSpeculatePipelineOnFig1:
    def test_speculate_applies_full_recipe(self):
        sel = make_sel_fn([0, 1])
        net, _names = patterns.fig1a(sel)
        report = speculate(net, "mux", "F", ToggleScheduler(2))
        kinds = [net.nodes[n].kind for n in net.nodes]
        assert "shared" in kinds
        assert "eemux" in kinds
        assert "F" not in net.nodes
        assert report.shared in net.nodes
        steps = [r.kind for r in report.records]
        assert steps[:3] == ["shannon_decompose", "convert_to_early_eval",
                             "share_blocks"]

    def test_candidates_found_on_fig1a(self):
        from repro.core.speculation import find_speculation_candidates

        net, _names = patterns.fig1a(lambda g: 0)
        assert ("mux", "F") in find_speculation_candidates(net)

    def test_no_candidates_on_plain_pipeline(self):
        from repro.core.speculation import find_speculation_candidates

        net = patterns.pipeline_with_func([1, 2], lambda x: x)
        assert find_speculation_candidates(net) == []
