"""Unit tests for the early-evaluation multiplexor: early firing,
anti-token injection, pending kills, output kills."""

import pytest

from repro.elastic.buffers import ElasticBuffer
from repro.elastic.eemux import EarlyEvalMux
from repro.elastic.environment import KillerSink, ListSource, Sink
from repro.errors import SchedulerError
from repro.netlist.graph import Netlist

from helpers import run


def mux_net(sels, a_values, b_values, sink="sink", kill_rate=0.0,
            stall_rate=0.0, seed=0, buffered_inputs=False):
    net = Netlist("t")
    net.add(EarlyEvalMux("mux", n_inputs=2))
    net.add(ListSource("sel", list(sels)))
    net.add(ListSource("a", list(a_values)))
    net.add(ListSource("b", list(b_values)))
    if buffered_inputs:
        net.add(ElasticBuffer("eba"))
        net.add(ElasticBuffer("ebb"))
        net.connect("a.o", "eba.i", name="ca_in")
        net.connect("eba.o", "mux.i0", name="ca")
        net.connect("b.o", "ebb.i", name="cb_in")
        net.connect("ebb.o", "mux.i1", name="cb")
    else:
        net.connect("a.o", "mux.i0", name="ca")
        net.connect("b.o", "mux.i1", name="cb")
    net.connect("sel.o", "mux.s", name="cs")
    if sink == "sink":
        net.add(Sink("snk", stall_rate=stall_rate, seed=seed))
    else:
        net.add(KillerSink("snk", kill_rate=kill_rate, seed=seed))
    net.connect("mux.o", "snk.i", name="out")
    net.validate()
    return net


class TestBasics:
    def test_needs_two_inputs(self):
        with pytest.raises(ValueError):
            EarlyEvalMux("m", n_inputs=1)

    def test_selects_values(self):
        """Every firing consumes one token per side: the selected one moves
        forward, the other is annihilated — so streams stay generation-
        aligned (sel=0 takes a:10 and kills b:20; sel=1 takes b:21 and
        kills a:11; the third select starves)."""
        net = mux_net([0, 1, 0], [10, 11], [20, 21], buffered_inputs=True)
        run(net, 10)
        assert net.nodes["snk"].values == [10, 21]

    def test_bad_select_value_raises(self):
        net = mux_net([7], [1], [2])
        with pytest.raises(SchedulerError):
            run(net, 3)


class TestEarliness:
    def test_fires_without_unselected_input(self):
        """The defining feature: select=0 and input a present fire even
        though input b never produces a token."""
        net = mux_net([0, 0], [1, 2], [])
        run(net, 6)
        assert net.nodes["snk"].values == [1, 2]

    def test_stalls_when_selected_input_missing(self):
        net = mux_net([1], [5], [])
        run(net, 6)
        assert net.nodes["snk"].values == []
        assert net.nodes["sel"].emitted == 0     # select token still waiting


class TestAntiTokenInjection:
    def test_unselected_token_killed(self):
        """Firing injects an anti-token that cancels the waiting token on
        the other channel."""
        net = mux_net([0], [1], [99], buffered_inputs=True)
        run(net, 8)
        assert net.nodes["snk"].values == [1]
        # The b-side token was destroyed: source emitted it, sink never saw it.
        assert net.nodes["b"].emitted == 1
        assert net.nodes["ebb"].count <= 0

    def test_kill_waits_for_late_token(self):
        """Anti-token parked for a token that arrives later (pending kill):
        with b arriving late, the kill from the first firing must cancel
        b's first token, not its second."""
        net = mux_net([0, 1], [1, 2], [100, 200], buffered_inputs=True)
        run(net, 12)
        # sel 0 -> a's 1; kill b's 100; sel 1 -> b's 200... but kill order
        # guarantees exactly one b token dies.
        assert net.nodes["snk"].values == [1, 200]

    def test_alternating_kills_both_sides(self):
        """Each firing kills the head of the unselected stream: sel=0 takes
        a:1 (kills b:10), sel=1 takes b:20 (kills a:2), sel=0 takes a:3
        (kills b:30), final sel=1 starves."""
        net = mux_net([0, 1, 0, 1], [1, 2, 3], [10, 20, 30],
                      buffered_inputs=True)
        run(net, 15)
        assert net.nodes["snk"].values == [1, 20, 3]


class TestOutputKills:
    def test_output_anti_token_consumes_one_firing(self):
        net = mux_net([0, 0], [1, 2], [], sink="killer", kill_rate=1.0)
        run(net, 10)
        assert net.nodes["snk"].values == []
        assert net.nodes["sel"].exhausted        # both select tokens used
        assert net.nodes["a"].exhausted          # both data tokens consumed

    def test_snapshot_roundtrip(self):
        mux = EarlyEvalMux("m", n_inputs=2)
        mux.reset()
        snap = mux.snapshot()
        mux._pk[0] = 2
        mux._pko = 1
        mux.restore(snap)
        assert mux._pk == [0, 0]
        assert mux._pko == 0
