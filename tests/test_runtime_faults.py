"""Differential resilience tests for :mod:`repro.runtime`.

The acceptance bar for the fault-tolerance layer is the same one the
simulation engines meet: *recovery must be invisible in the results*.
Every test here drives a deterministic, seed-driven fault schedule
(:class:`~repro.runtime.faults.FaultPlan`) through a sweep or an
exploration and pins the recovered outcome — retried configurations,
respawned workers, resumed checkpoints — byte- or value-identical to an
unfaulted run.  Corrupt checkpoints must be detected (checksum / header /
key) and reported as a clean :class:`~repro.errors.CheckpointError`,
never silently loaded.

Single-process fault cases run everywhere; the multiprocessing cases
(worker crash / hang / kill-and-respawn under the supervisor) are gated
on ``usable_cpus() >= 2`` like the sharded benchmarks.
"""

import os

import pytest

from repro.errors import CheckpointError
from repro.perf.presets import fig6_point, fig6_spec
from repro.perf.sweep import SweepSpec, run_sweep
from repro.runtime.checkpoint import (
    atomic_write_text,
    content_key,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.faults import (
    Fault,
    FaultPlan,
    InjectedFault,
    attempt_scope,
    corrupt_checkpoint,
    fault_point,
    install_plan,
    plan_scope,
)
from repro.runtime.supervisor import Supervisor, usable_cpus
from repro.verif.explore import StateExplorer
from test_explore_diff import build_mc_pipeline

needs_multiprocessing = pytest.mark.skipif(
    usable_cpus() < 2,
    reason="supervised-worker fault cases need >= 2 usable CPUs",
)


def tiny_spec(**overrides):
    """A four-configuration sweep small enough to re-run many times."""
    kwargs = dict(fracs=(0.0, 1.0), windows=(2, 3), cycles=60)
    kwargs.update(overrides)
    return fig6_spec(**kwargs)


def explore_net():
    return build_mc_pipeline(["eb", "zbl"], can_kill=True)


def explorer_fingerprint(result):
    """Everything observable about an exploration, for identity checks."""
    return (
        result.states,
        [(t.source, t.target, t.choices, t.events, t.productive)
         for t in result.transitions],
        result.violations,
        result.complete,
        result.channel_names,
        result.stopped,
    )


# ---------------------------------------------------------------------------
# checkpoint primitives


class TestCheckpointPrimitives:
    def test_atomic_write_failure_leaves_target_intact(self, tmp_path,
                                                       monkeypatch):
        """A crash between the temp-file write and the rename must leave
        the previous file byte-identical and no temp litter behind."""
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "original\n")

        def exploding_replace(src, dst):
            raise OSError("injected crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected crash"):
            atomic_write_text(str(path), "replacement\n")
        monkeypatch.undo()
        assert path.read_text() == "original\n"
        assert os.listdir(tmp_path) == ["out.txt"]

    @pytest.mark.parametrize("codec,body", [
        ("json", {"rows": [{"index": 0, "theta": 0.5}]}),
        ("pickle", {"states": [({"a": 1}, b"\x03")], "next_index": 7}),
    ])
    def test_save_load_round_trip(self, tmp_path, codec, body):
        path = str(tmp_path / "ck")
        key = content_key(("job", 1))
        save_checkpoint(path, "kind", key, body, codec=codec)
        assert load_checkpoint(path, "kind", key) == body

    def test_missing_file_is_a_fresh_start(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent"), "k", "key") is None

    @pytest.mark.parametrize("mode", ["flip", "truncate", "garbage"])
    def test_corruption_is_detected(self, tmp_path, mode):
        path = str(tmp_path / "ck")
        key = content_key("job")
        save_checkpoint(path, "kind", key, {"rows": list(range(50))})
        corrupt_checkpoint(path, mode=mode)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "kind", key)

    def test_kind_and_key_mismatches_refuse_to_load(self, tmp_path):
        path = str(tmp_path / "ck")
        save_checkpoint(path, "sweep", content_key("a"), {"rows": []})
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(path, "explore", content_key("a"))
        with pytest.raises(CheckpointError, match="different job"):
            load_checkpoint(path, "sweep", content_key("b"))

    def test_content_key_is_value_deterministic(self):
        assert content_key(("x", 1, (2.5,))) == content_key(("x", 1, (2.5,)))
        assert content_key("a") != content_key("b")


# ---------------------------------------------------------------------------
# the fault harness itself


class TestFaultHarness:
    def test_fault_point_is_noop_without_plan(self):
        fault_point("anywhere", 123)  # must not raise

    def test_raise_and_sigint_kinds(self):
        with plan_scope(FaultPlan([Fault("s", 1, kind="raise")])):
            fault_point("s", 0)  # key mismatch: no fire
            with pytest.raises(InjectedFault):
                fault_point("s", 1)
        with plan_scope(FaultPlan([Fault("s", kind="sigint")])):
            with pytest.raises(KeyboardInterrupt):
                fault_point("s", "any key matches a None-keyed fault")

    def test_crash_and_hang_degrade_in_process(self):
        """Outside a supervised worker, ``crash``/``hang`` must not take
        the test process down — they degrade to :class:`InjectedFault`."""
        for kind in ("crash", "hang"):
            with plan_scope(FaultPlan([Fault("s", kind=kind)])):
                with pytest.raises(InjectedFault, match="degradation"):
                    fault_point("s")

    def test_attempts_exhaust_times_limited_faults(self):
        plan = FaultPlan([Fault("s", kind="raise", times=2)])
        with plan_scope(plan):
            for attempt in (0, 1):
                with attempt_scope(attempt), pytest.raises(InjectedFault):
                    fault_point("s")
            with attempt_scope(2):
                fault_point("s")  # exhausted: retry succeeds

    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(7, "s", range(100), rate=0.3)
        b = FaultPlan.seeded(7, "s", range(100), rate=0.3)
        assert a.faults == b.faults
        assert 0 < len(a.faults) < 100
        assert a.faults != FaultPlan.seeded(8, "s", range(100), rate=0.3).faults

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("s", kind="meteor")


# ---------------------------------------------------------------------------
# serial sweep resilience (always on)


class TestSerialSweepResilience:
    def test_retried_faults_leave_no_trace(self):
        """Seeded crash/raise faults, each retried once: the recovered
        sweep renders byte-identical JSON to the clean sweep."""
        clean = run_sweep(tiny_spec())
        plan = FaultPlan.seeded(11, "sweep_config", range(4),
                                kinds=("crash", "raise"), rate=0.9)
        assert plan.faults, "seed must schedule at least one fault"
        faulted = run_sweep(tiny_spec(), retries=1, backoff=0.0,
                            fault_plan=plan)
        assert faulted.ok()
        assert faulted.to_json() == clean.to_json()
        assert faulted.stats.retries == len(plan.faults)

    def test_exhausted_retries_become_failed_rows(self):
        plan = FaultPlan([Fault("sweep_config", 2, kind="raise", times=5)])
        result = run_sweep(tiny_spec(), retries=1, backoff=0.0,
                           fault_plan=plan)
        assert not result.ok()
        (failure,) = result.failures
        assert failure.index == 2
        assert failure.attempts == 2
        assert "injected" in failure.error
        # the healthy rows are unaffected
        clean = run_sweep(tiny_spec())
        healthy = [row for row in clean.rows if row["index"] != 2]
        assert result.rows == healthy

    def test_sigint_flushes_checkpoint_and_resume_matches_clean(self,
                                                                tmp_path):
        ck = str(tmp_path / "sweep.ckpt")
        clean = run_sweep(tiny_spec())
        plan = FaultPlan([Fault("sweep_config", 2, kind="sigint")])
        with pytest.raises(KeyboardInterrupt):
            run_sweep(tiny_spec(), checkpoint=ck, fault_plan=plan)
        body = load_checkpoint(ck, "sweep", _sweep_key_of(tiny_spec()))
        assert [row["index"] for row in body["rows"]] == [0, 1]
        resumed = run_sweep(tiny_spec(), checkpoint=ck)
        assert resumed.to_json() == clean.to_json()
        # a second resume is a pure cache hit: every row from the checkpoint
        again = run_sweep(tiny_spec(), checkpoint=ck)
        assert again.to_json() == clean.to_json()

    @pytest.mark.parametrize("mode", ["flip", "truncate", "garbage"])
    def test_corrupt_sweep_checkpoint_is_loud(self, tmp_path, mode):
        ck = str(tmp_path / "sweep.ckpt")
        run_sweep(tiny_spec(), checkpoint=ck)
        corrupt_checkpoint(ck, mode=mode)
        with pytest.raises(CheckpointError):
            run_sweep(tiny_spec(), checkpoint=ck)

    def test_checkpoint_of_different_sweep_is_rejected(self, tmp_path):
        ck = str(tmp_path / "sweep.ckpt")
        run_sweep(tiny_spec(), checkpoint=ck)
        with pytest.raises(CheckpointError, match="different job"):
            run_sweep(tiny_spec(cycles=61), checkpoint=ck)

    def test_lane_chunk_split_isolates_poison_config(self):
        """One poison configuration inside a lane batch: the chunk is split
        (no retries charged), the poison row fails, the rest match the
        clean lane sweep exactly."""
        clean = run_sweep(tiny_spec(), lanes=4)
        plan = FaultPlan([Fault("sweep_config", 1, kind="raise", times=99)])
        faulted = run_sweep(tiny_spec(), lanes=4, fault_plan=plan)
        assert faulted.stats.splits >= 1
        assert faulted.stats.retries == 0
        assert [f.index for f in faulted.failures] == [1]
        healthy = [row for row in clean.rows if row["index"] != 1]
        assert faulted.rows == healthy


def _sweep_key_of(spec):
    """The content key run_sweep derives for ``spec`` (white-box, used to
    inspect checkpoint bodies mid-test)."""
    from repro.perf import sweep as sweep_module

    configs = spec.expand()
    payloads = [
        {"index": c.index, "name": c.name, "factory": spec.factory,
         "params": c.params, "channel": c.channel, "cycles": spec.cycles,
         "warmup": spec.warmup, "engine": "worklist"}
        for c in configs
    ]
    return sweep_module._sweep_key(spec, payloads)


# ---------------------------------------------------------------------------
# explorer checkpoint / resume (always on)


class TestExplorerResilience:
    def test_sigint_resume_is_bit_identical_scalar(self, tmp_path):
        ck = str(tmp_path / "explore.ckpt")
        clean = StateExplorer(explore_net(), max_states=5000).explore()
        install_plan(FaultPlan([Fault("explore_state", 40, kind="sigint")]))
        try:
            with pytest.raises(KeyboardInterrupt):
                StateExplorer(explore_net(), max_states=5000, checkpoint=ck,
                              checkpoint_every=10).explore()
        finally:
            install_plan(None)
        resumed = StateExplorer(explore_net(), max_states=5000,
                                checkpoint=ck).explore()
        assert explorer_fingerprint(resumed) == explorer_fingerprint(clean)

    def test_scalar_checkpoint_resumes_under_lanes_and_back(self, tmp_path):
        """Checkpoints are engine-agnostic: a scalar interrupt resumed by
        the lane-batched engine (and vice versa) still reproduces the
        clean exploration exactly."""
        clean = StateExplorer(explore_net(), max_states=5000).explore()
        for first_lanes, second_lanes in ((1, 4), (4, 1)):
            ck = str(tmp_path / f"explore-{first_lanes}.ckpt")
            install_plan(FaultPlan(
                [Fault("explore_state", 24, kind="sigint")]))
            try:
                StateExplorer(explore_net(), max_states=5000, checkpoint=ck,
                              lanes=first_lanes,
                              checkpoint_every=5).explore()
            except KeyboardInterrupt:
                pass  # batched boundaries are sparse; 24 may not be one
            finally:
                install_plan(None)
            resumed = StateExplorer(explore_net(), max_states=5000,
                                    checkpoint=ck,
                                    lanes=second_lanes).explore()
            assert (explorer_fingerprint(resumed)
                    == explorer_fingerprint(clean))

    def test_time_budget_slices_converge_to_clean(self, tmp_path):
        ck = str(tmp_path / "explore.ckpt")
        clean = StateExplorer(explore_net(), max_states=5000).explore()
        sliced = StateExplorer(explore_net(), max_states=5000, checkpoint=ck,
                               time_budget=0.0).explore()
        assert sliced.stopped == "time budget exceeded"
        assert not sliced.ok()
        for _ in range(10_000):
            if sliced.stopped is None:
                break
            sliced = StateExplorer(explore_net(), max_states=5000,
                                   checkpoint=ck,
                                   time_budget=0.005).explore()
        assert explorer_fingerprint(sliced) == explorer_fingerprint(clean)

    def test_resume_of_finished_checkpoint_is_a_cache_hit(self, tmp_path):
        ck = str(tmp_path / "explore.ckpt")
        first = StateExplorer(explore_net(), max_states=5000,
                              checkpoint=ck).explore()
        again = StateExplorer(explore_net(), max_states=5000,
                              checkpoint=ck).explore()
        assert explorer_fingerprint(again) == explorer_fingerprint(first)

    def test_interrupt_and_resume_at_max_states_cap(self, tmp_path):
        """An exploration that hits the state cap, interrupted mid-way:
        the resumed run must reproduce the truncated graph exactly —
        including ``complete=False`` — for both engines."""
        cap = 60
        clean = StateExplorer(explore_net(), max_states=cap).explore()
        assert not clean.complete
        for lanes in (1, 4):
            ck = str(tmp_path / f"capped-{lanes}.ckpt")
            install_plan(FaultPlan(
                [Fault("explore_state", 30, kind="sigint")]))
            try:
                StateExplorer(explore_net(), max_states=cap, checkpoint=ck,
                              lanes=lanes, checkpoint_every=5).explore()
            except KeyboardInterrupt:
                pass
            finally:
                install_plan(None)
            resumed = StateExplorer(explore_net(), max_states=cap,
                                    checkpoint=ck, lanes=lanes).explore()
            assert (explorer_fingerprint(resumed)
                    == explorer_fingerprint(clean))

    @pytest.mark.parametrize("mode", ["flip", "truncate", "garbage"])
    def test_corrupt_explore_checkpoint_is_loud(self, tmp_path, mode):
        ck = str(tmp_path / "explore.ckpt")
        StateExplorer(explore_net(), max_states=5000,
                      checkpoint=ck).explore()
        corrupt_checkpoint(ck, mode=mode)
        with pytest.raises(CheckpointError):
            StateExplorer(explore_net(), max_states=5000,
                          checkpoint=ck).explore()

    def test_checkpoint_of_different_design_is_rejected(self, tmp_path):
        ck = str(tmp_path / "explore.ckpt")
        StateExplorer(explore_net(), max_states=5000,
                      checkpoint=ck).explore()
        other = build_mc_pipeline(["eb"], can_kill=False)
        with pytest.raises(CheckpointError, match="different job"):
            StateExplorer(other, max_states=5000, checkpoint=ck).explore()


# ---------------------------------------------------------------------------
# supervised multiprocessing fault cases (gated)


def _double(task):
    fault_point("task", task["n"])
    return task["n"] * 2


@needs_multiprocessing
class TestSupervisorMultiprocessing:
    def test_worker_crash_is_respawned_and_task_retried(self):
        plan = FaultPlan([Fault("task", 3, kind="crash")])
        supervisor = Supervisor("test_runtime_faults:_runner_with_plan",
                                n_workers=2, retries=1, backoff=0.0)
        results, failures = supervisor.run(
            [{"n": n, "plan": plan} for n in range(6)]
        )
        assert failures == []
        assert sorted(results) == [0, 2, 4, 6, 8, 10]
        assert supervisor.stats.deaths >= 1
        assert supervisor.stats.respawns >= 1

    def test_hung_worker_is_killed_by_deadline(self):
        plan = FaultPlan([Fault("task", 1, kind="hang", seconds=60.0)])
        supervisor = Supervisor("test_runtime_faults:_runner_with_plan",
                                n_workers=2, timeout=1.0, retries=1,
                                backoff=0.0)
        results, failures = supervisor.run(
            [{"n": n, "plan": plan} for n in range(4)]
        )
        assert failures == []
        assert sorted(results) == [0, 2, 4, 6]
        assert supervisor.stats.timeouts >= 1

    def test_exhausted_crashes_become_task_failures(self):
        plan = FaultPlan([Fault("task", 2, kind="crash", times=99)])
        supervisor = Supervisor("test_runtime_faults:_runner_with_plan",
                                n_workers=2, retries=1, backoff=0.0)
        results, failures = supervisor.run(
            [{"n": n, "plan": plan} for n in range(4)]
        )
        assert sorted(results) == [0, 2, 6]
        (failure,) = failures
        assert failure.task["n"] == 2
        assert failure.attempts == 2
        assert "worker died" in failure.error

    def test_supervised_sweep_recovers_bit_identically(self):
        clean = run_sweep(tiny_spec())
        plan = FaultPlan([Fault("sweep_config", 1, kind="crash")])
        faulted = run_sweep(tiny_spec(), n_workers=2, retries=1, backoff=0.0,
                            fault_plan=plan)
        assert faulted.ok()
        assert faulted.to_json() == clean.to_json()
        assert faulted.stats.deaths >= 1


def _runner_with_plan(task):
    """Importable supervisor runner for the gated tests: installs the
    plan shipped in the task (spawn workers inherit nothing) and runs the
    faultable body at the scheduler-provided attempt number."""
    from repro.runtime import faults

    with faults.plan_scope(task["plan"]), \
            faults.attempt_scope(task.get("attempt", 0)):
        return _double(task)


# ---------------------------------------------------------------------------
# durability, retry-jitter and shutdown-courtesy regressions (PR 8)


class TestAtomicWriteDurability:
    def test_rename_is_followed_by_parent_directory_fsync(self, tmp_path,
                                                          monkeypatch):
        """``os.replace`` alone is atomic but not crash-durable — only an
        fsync of the *parent directory* pins the rename.  Regression: the
        directory fsync must happen, and must happen after the rename."""
        from repro.runtime import checkpoint as ckpt

        order = []
        real_replace = os.replace

        def spy_replace(src, dst):
            order.append(("replace", os.path.abspath(dst)))
            return real_replace(src, dst)

        def spy_fsync_dir(directory):
            order.append(("fsync_dir", os.path.abspath(directory)))

        monkeypatch.setattr(ckpt.os, "replace", spy_replace)
        monkeypatch.setattr(ckpt, "_fsync_directory", spy_fsync_dir)
        target = str(tmp_path / "sub" / "state.json")
        os.makedirs(os.path.dirname(target))
        ckpt.atomic_write_text(target, "payload")
        assert order == [
            ("replace", os.path.abspath(target)),
            ("fsync_dir", os.path.dirname(os.path.abspath(target))),
        ]

    def test_unfsyncable_directory_degrades_silently(self, tmp_path,
                                                     monkeypatch):
        """Filesystems that refuse directory fsync (network mounts) keep
        the old behaviour — best-effort, no exception.  (The *data* fsync
        inside :func:`atomic_write_bytes` stays mandatory; only the
        directory sync is allowed to degrade.)"""
        from repro.runtime.checkpoint import _fsync_directory

        def refuse(fd):
            raise OSError("fsync not supported here")

        monkeypatch.setattr(os, "fsync", refuse)
        _fsync_directory(str(tmp_path))             # swallowed
        monkeypatch.undo()
        _fsync_directory(str(tmp_path / "missing"))  # unopenable: swallowed
        target = str(tmp_path / "state.json")
        atomic_write_text(target, "survived")
        with open(target) as fh:
            assert fh.read() == "survived"


class TestJitteredBackoff:
    def test_schedule_is_pinned(self):
        """The retry schedule is part of the reproducibility contract:
        these exact delays (base 0.1, key "job-a") must never drift."""
        from repro.runtime.control import jittered_backoff

        schedule = [jittered_backoff(0.1, attempt, key="job-a")
                    for attempt in range(4)]
        assert schedule == [
            jittered_backoff(0.1, attempt, key="job-a")
            for attempt in range(4)
        ]
        for attempt, delay in enumerate(schedule):
            bare = 0.1 * 2 ** attempt
            assert 0.5 * bare <= delay < 1.5 * bare

    def test_keys_decorrelate_but_stay_deterministic(self):
        from repro.runtime.control import jittered_backoff

        a = [jittered_backoff(0.1, n, key="job-a") for n in range(4)]
        b = [jittered_backoff(0.1, n, key="job-b") for n in range(4)]
        assert a != b                       # different tasks spread out
        assert jittered_backoff(0.1, 2, key=None) == 0.4   # bare exponential
        assert jittered_backoff(0.0, 5, key="job-a") == 0.0


class TestSupervisorStopCourtesy:
    class _FakeProcess:
        """Records the stop protocol; ``alive_after`` controls how many
        liveness probes report the process still running."""

        def __init__(self, alive_after):
            self.alive_after = alive_after
            self.calls = []
            self._probes = 0

        def is_alive(self):
            self._probes += 1
            return self._probes <= self.alive_after

        def terminate(self):
            self.calls.append("terminate")

        def kill(self):
            self.calls.append("kill")

        def join(self, timeout=None):
            self.calls.append("join")

    def test_terminate_precedes_kill(self):
        """A worker that ignores SIGTERM is SIGKILLed — but only after the
        grace join, never first."""
        process = self._FakeProcess(alive_after=99)
        Supervisor._stop_process(process, grace=0.0)
        assert process.calls == ["terminate", "join", "kill", "join"]

    def test_cooperative_worker_is_never_killed(self):
        process = self._FakeProcess(alive_after=1)
        Supervisor._stop_process(process, grace=0.0)
        assert process.calls == ["terminate", "join", "join"]
        assert "kill" not in process.calls

    def test_dead_worker_is_not_signalled(self):
        process = self._FakeProcess(alive_after=0)
        Supervisor._stop_process(process, grace=0.0)
        assert process.calls == ["join"]
