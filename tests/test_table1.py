"""Acceptance test: exact reproduction of Table 1 of the paper.

The trace of the Figure 1(d) speculative loop under the toggle scheduler
must match the published table cell for cell — including the same-cycle
anti-token cancellations (cycles 0, 1, 3, 4, 6) and the two misprediction
stalls (cycles 2 and 5).

One documented erratum: the paper prints ``EBin = G`` at cycle 6, but with
``Sel = 0`` the multiplexor forwards channel 0 whose token is ``F``; our
trace reports ``F`` (see EXPERIMENTS.md).
"""

from repro.netlist import patterns
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder, format_trace_table

PAPER_TABLE = {
    "Fin0":  ["A", "-", "C", "-", "E", "F", "F"],
    "Fout0": ["A", "-", "C", "-", "E", "*", "F"],
    "Fin1":  ["-", "B", "D", "D", "-", "G", "-"],
    "Fout1": ["-", "B", "*", "D", "-", "G", "-"],
    "EBin":  ["A", "B", "*", "D", "E", "*", "F"],   # paper erratum: G at c6
}
PAPER_SEL = [0, 1, 1, 1, 0, 0, 0]
PAPER_SCHED = [0, 1, 0, 1, 0, 1, 0]


def simulate_table1():
    net, names = patterns.table1_design()
    order = ["fin0", "fout0", "fin1", "fout1", "ebin"]
    trace = TraceRecorder(
        [names[k] for k in order],
        aliases={names[k]: k.capitalize().replace("bin", "Bin") for k in order},
    )
    shared = net.nodes[names["shared"]]
    sel_row, sched_row = [], []

    class Extra:
        def observe(self, cycle, netlist):
            st = netlist.channels[names["sel"]].state
            sel_row.append(st.data if st.vp else "*")
            sched_row.append(shared.scheduler.prediction())

    Simulator(net, observers=[trace, Extra()]).run(7)
    sym = trace.symbol_rows()
    rows = {alias: sym[names[k]] for k, alias in
            zip(order, ["Fin0", "Fout0", "Fin1", "Fout1", "EBin"])}
    return rows, sel_row, sched_row, net, names


class TestTable1:
    def test_channel_rows_match_paper(self):
        rows, _sel, _sched, _net, _names = simulate_table1()
        for label in ("Fin0", "Fout0", "Fin1", "Fout1", "EBin"):
            assert rows[label] == PAPER_TABLE[label], label

    def test_sel_row(self):
        _rows, sel, _sched, _net, _names = simulate_table1()
        assert sel == PAPER_SEL

    def test_sched_row_is_toggle(self):
        _rows, _sel, sched, _net, _names = simulate_table1()
        assert sched == PAPER_SCHED

    def test_mispredictions_at_cycles_2_and_5(self):
        _rows, sel, sched, net, names = simulate_table1()
        mismatch = [c for c, (a, b) in enumerate(zip(sel, sched))
                    if a != "*" and a != b]
        assert mismatch == [2, 5]
        assert net.nodes[names["shared"]].mispredicts == 2

    def test_five_transfers_in_seven_cycles(self):
        """Two mispredictions cost one cycle each: 5 tokens in 7 cycles."""
        _rows, _sel, _sched, net, names = simulate_table1()
        # Re-simulate to use stats (simulate_table1 already consumed the run).
        net, names = patterns.table1_design()
        sim = Simulator(net).run(7)
        assert sim.stats.transfers[names["ebin"]] == 5

    def test_formatting_renders_table(self):
        net, names = patterns.table1_design()
        order = ["fin0", "fout0", "fin1", "fout1", "ebin"]
        trace = TraceRecorder([names[k] for k in order])
        Simulator(net, observers=[trace]).run(7)
        text = format_trace_table(trace, title="Table 1")
        assert "Table 1" in text
        assert "A - C - E F F" in " ".join(text.split())
