"""Offline-friendly editable install fallback.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editables; on
air-gapped machines run ``python setup.py develop`` (or add ``src/`` to a
``.pth`` file) instead.  Configuration mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Speculation in Elastic Systems' (DAC 2009)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
